"""Segmented index: manifests, tiered merges, scatter-gather serving.

This is the Lucene-style lifecycle around the immutable segment files
of :mod:`repro.search.index.segment`:

* :class:`IndexDirectory` owns an on-disk directory of sealed
  ``seg_*.ridx`` files plus ``segments_<N>`` manifests.  The manifest
  is the **only** mutable state: committing one is a single atomic
  ``os.replace``, so readers always see either the old complete
  segment set or the new complete one — a crash between sealing a
  segment and committing the manifest merely leaves an ignored orphan
  file.  Generation ``N`` increases monotonically; the PR 4 query
  cache keys on it, so a merge (same documents, different segments)
  invalidates stale entries for free.
* :class:`SegmentedIndex` serves the read API of
  :class:`~repro.search.index.inverted.InvertedIndex` over all live
  segments.  Per-document state routes to the owning segment by doc-id
  range; statistics that enter scoring (document frequency, average
  field length, doc count) are *global* — summed over segments — so
  every score is bit-identical to a monolithic index over the same
  corpus.  The pruned top-k driver consumes
  :meth:`SegmentedIndex.segment_views` to scan segment-by-segment and
  skip whole segments whose score bound cannot reach the heap.

Documents keep their global ids: the manifest order assigns each
segment a contiguous doc-id range (``base .. base + doc_count``), and
merges only ever coalesce **adjacent** segments, so global ids — and
with them rankings and tie-breaks — never change under any merge.
"""

from __future__ import annotations

import json
import os
import threading
import time
from bisect import bisect_right
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import (Dict, Iterator, List, Optional, Sequence, Tuple,
                    Union)

from repro.errors import IndexError_
from repro.search.document import Document, Field
from repro.search.index.inverted import InvertedIndex
from repro.search.index.postings import Posting
from repro.search.index.segment import (SEGMENT_SUFFIX, LazyPostings,
                                        SegmentReader,
                                        merge_segment_files,
                                        write_segment)

__all__ = ["SegmentInfo", "Manifest", "IndexDirectory",
           "SegmentedIndex", "SEGMENTS_PREFIX", "SEGMENT_DIR_SUFFIX",
           "DEFAULT_MERGE_FACTOR"]

SEGMENTS_PREFIX = "segments_"
#: directory suffix that marks a segmented index on disk
SEGMENT_DIR_SUFFIX = ".segd"
#: segments per size tier before a merge triggers
DEFAULT_MERGE_FACTOR = 8
#: size ratio separating merge tiers (decimal orders of magnitude)
TIER_RATIO = 10.0

PathLike = Union[str, Path]


def _metrics():
    from repro.core.observability import get_observability
    return get_observability().metrics


# ----------------------------------------------------------------------
# manifest
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SegmentInfo:
    """One live segment as recorded in the manifest."""

    file: str
    doc_count: int
    size_bytes: int


@dataclass(frozen=True)
class Manifest:
    """A committed segment set.  ``generation`` is the cache/commit
    counter; ``counter`` is the next free segment file number (never
    reused, so files from abandoned generations cannot collide)."""

    generation: int
    name: str
    counter: int
    segments: Tuple[SegmentInfo, ...]

    @property
    def doc_count(self) -> int:
        return sum(info.doc_count for info in self.segments)

    def to_json(self) -> dict:
        return {
            "format": "repro.segments/v1",
            "generation": self.generation,
            "name": self.name,
            "counter": self.counter,
            "segments": [{"file": info.file,
                          "doc_count": info.doc_count,
                          "size_bytes": info.size_bytes}
                         for info in self.segments],
        }

    @classmethod
    def from_json(cls, data: dict) -> "Manifest":
        if not isinstance(data, dict):
            raise IndexError_(
                f"not a segments manifest: {type(data).__name__}")
        if data.get("format") != "repro.segments/v1":
            raise IndexError_(
                f"not a segments manifest: {data.get('format')!r}")
        return cls(
            generation=data["generation"],
            name=data["name"],
            counter=data["counter"],
            segments=tuple(SegmentInfo(entry["file"],
                                       entry["doc_count"],
                                       entry["size_bytes"])
                           for entry in data["segments"]))


class IndexDirectory:
    """An on-disk directory of immutable segments plus manifests.

    All mutation goes through :meth:`commit`, which writes
    ``segments_<generation+1>`` to a temp file and atomically renames
    it into place.  Opening always resolves the highest *parseable*
    manifest, so torn writes and orphaned segment files from crashes
    are invisible to readers until :meth:`vacuum` sweeps them.
    """

    def __init__(self, path: PathLike, name: str = "index") -> None:
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.name = name
        existing = self.read_manifest()
        if existing is not None:
            self.name = existing.name

    # -- manifest IO ---------------------------------------------------

    def _manifest_path(self, generation: int) -> Path:
        return self.path / f"{SEGMENTS_PREFIX}{generation}"

    def _manifest_generations(self) -> List[int]:
        generations = []
        for entry in self.path.iterdir():
            name = entry.name
            if not name.startswith(SEGMENTS_PREFIX):
                continue
            suffix = name[len(SEGMENTS_PREFIX):]
            if suffix.isdigit():
                generations.append(int(suffix))
        return sorted(generations)

    def read_manifest(self) -> Optional[Manifest]:
        """The newest committed manifest, or ``None`` when the
        directory has never been committed to.  Unparseable manifests
        (torn by a crash) are skipped in favor of older complete
        ones."""
        for generation in reversed(self._manifest_generations()):
            target = self._manifest_path(generation)
            try:
                data = json.loads(target.read_text(encoding="utf-8"))
                manifest = Manifest.from_json(data)
            except (OSError, ValueError, KeyError, TypeError,
                    IndexError_):
                continue
            if manifest.generation != generation:
                continue
            return manifest
        return None

    def manifest(self) -> Manifest:
        """Like :meth:`read_manifest`, but an empty generation-0
        manifest when nothing is committed yet."""
        found = self.read_manifest()
        if found is not None:
            return found
        return Manifest(generation=0, name=self.name, counter=1,
                        segments=())

    def commit(self, segments: Sequence[SegmentInfo],
               counter: Optional[int] = None) -> Manifest:
        """Atomically commit ``segments`` as the new live set."""
        current = self.manifest()
        manifest = Manifest(
            generation=current.generation + 1,
            name=self.name,
            counter=counter if counter is not None else current.counter,
            segments=tuple(segments))
        target = self._manifest_path(manifest.generation)
        tmp = target.with_name(target.name + ".tmp")
        raw = json.dumps(manifest.to_json(), ensure_ascii=False,
                         indent=2)
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(raw)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
        return manifest

    # -- sealing segments ----------------------------------------------

    def _allocate(self, counter: int) -> Tuple[str, int]:
        """Next unused segment file name.  Scans for leftovers of
        crashed/abandoned commits so their numbers are never
        reissued."""
        highest = counter - 1
        for entry in self.path.glob(f"seg_*{SEGMENT_SUFFIX}"):
            stem = entry.name[4:-len(SEGMENT_SUFFIX)]
            if stem.isdigit():
                highest = max(highest, int(stem))
        number = highest + 1
        return f"seg_{number:010d}{SEGMENT_SUFFIX}", number + 1

    def reserve(self, count: int,
                counter: Optional[int] = None) -> Tuple[List[str], int]:
        """Pre-assign ``count`` segment file names without writing
        anything.  Parallel build workers seal straight into reserved
        names (no cross-process coordination needed), and the parent
        later commits them together with the returned counter."""
        if counter is None:
            counter = self.manifest().counter
        names: List[str] = []
        for _ in range(count):
            file_name, counter = self._allocate(counter)
            names.append(file_name)
        return names, counter

    def seal(self, index: InvertedIndex,
             counter: Optional[int] = None) -> Tuple[SegmentInfo, int]:
        """Seal ``index`` into a new (uncommitted) segment file.
        Returns its :class:`SegmentInfo` and the advanced counter —
        the segment only becomes visible once a manifest referencing
        it is committed."""
        if counter is None:
            counter = self.manifest().counter
        file_name, counter = self._allocate(counter)
        path = write_segment(index, self.path / file_name)
        info = SegmentInfo(file=file_name, doc_count=index.doc_count,
                           size_bytes=path.stat().st_size)
        return info, counter

    def add_index(self, index: InvertedIndex) -> Manifest:
        """Seal ``index`` and append it to the live set (one commit)."""
        current = self.manifest()
        info, counter = self.seal(index, current.counter)
        return self.commit([*current.segments, info], counter=counter)

    def add_sealed(self, segments: Sequence[SegmentInfo],
                   counter: int) -> Manifest:
        """Append already-sealed segments (e.g. built by parallel
        workers) to the live set in one commit."""
        current = self.manifest()
        return self.commit([*current.segments, *segments],
                           counter=max(counter, current.counter))

    # -- tiered merge ---------------------------------------------------

    @staticmethod
    def _tier(size_bytes: int) -> int:
        tier = 0
        size = max(size_bytes, 1)
        while size >= TIER_RATIO:
            size /= TIER_RATIO
            tier += 1
        return tier

    def plan_merges(self, merge_factor: int = DEFAULT_MERGE_FACTOR,
                    force: bool = False) -> List[Tuple[int, int]]:
        """Merge candidates as ``(start, end)`` index ranges into the
        current manifest's segment list.

        Tiered policy: segments are bucketed by size order of
        magnitude (:data:`TIER_RATIO`); any run of **adjacent**
        same-tier segments at least ``merge_factor`` long collapses
        into one.  Adjacency is load-bearing — doc ids are assigned by
        manifest order, so only neighbors can merge without renumbering
        documents.  ``force`` collapses everything into one segment.
        """
        segments = self.manifest().segments
        if len(segments) < 2:
            return []
        if force:
            return [(0, len(segments))]
        if merge_factor < 2:
            raise IndexError_(f"merge_factor must be >= 2, "
                              f"got {merge_factor}")
        plans: List[Tuple[int, int]] = []
        run_start = 0
        run_tier = self._tier(segments[0].size_bytes)
        for position in range(1, len(segments) + 1):
            tier = (self._tier(segments[position].size_bytes)
                    if position < len(segments) else None)
            if tier != run_tier:
                if position - run_start >= merge_factor:
                    plans.append((run_start, position))
                run_start, run_tier = position, tier
        return plans

    def merge(self, merge_factor: int = DEFAULT_MERGE_FACTOR,
              force: bool = False) -> int:
        """Run the tiered merge policy once; returns the number of
        merges performed.  Each merge seals its output before the
        single commit swaps all merged runs in atomically — a crash
        at any point leaves the old manifest serving."""
        plans = self.plan_merges(merge_factor, force=force)
        if not plans:
            return 0
        started = time.perf_counter()
        current = self.manifest()
        segments = list(current.segments)
        counter = current.counter
        merged: Dict[int, SegmentInfo] = {}
        for start, end in plans:
            file_name, counter = self._allocate(counter)
            readers = [SegmentReader(self.path / info.file)
                       for info in segments[start:end]]
            try:
                path = merge_segment_files(readers,
                                           self.path / file_name)
            finally:
                for reader in readers:
                    reader.close()
            merged[start] = SegmentInfo(
                file=file_name,
                doc_count=sum(info.doc_count
                              for info in segments[start:end]),
                size_bytes=path.stat().st_size)
        replaced: List[SegmentInfo] = []
        position = 0
        spans = dict(plans)
        while position < len(segments):
            if position in merged:
                replaced.append(merged[position])
                position = spans[position]
            else:
                replaced.append(segments[position])
                position += 1
        self.commit(replaced, counter=counter)
        metrics = _metrics()
        if metrics.enabled:
            metrics.counter("segment_merges_total",
                            "segment merges performed").inc(len(plans))
            metrics.counter("segment_merge_seconds_total",
                            "wall seconds spent merging segments"
                            ).inc(time.perf_counter() - started)
        return len(plans)

    # -- maintenance ----------------------------------------------------

    def vacuum(self) -> List[str]:
        """Delete segment files and manifests no longer referenced by
        the newest committed manifest; returns the deleted names."""
        manifest = self.read_manifest()
        if manifest is None:
            return []
        live = {info.file for info in manifest.segments}
        deleted = []
        for entry in sorted(self.path.iterdir()):
            name = entry.name
            stale_segment = (name.endswith(SEGMENT_SUFFIX)
                             and name not in live)
            stale_manifest = (name.startswith(SEGMENTS_PREFIX)
                              and name !=
                              f"{SEGMENTS_PREFIX}{manifest.generation}")
            if stale_segment or stale_manifest or name.endswith(".tmp"):
                entry.unlink()
                deleted.append(name)
        return deleted


# ----------------------------------------------------------------------
# the serving facade
# ----------------------------------------------------------------------

class _MultiPostings:
    """One term's postings across every segment that contains it.

    Parts arrive pre-rebased into global doc-id space and carry the
    global document frequency, so iteration order (ascending global
    doc id) and every statistic match the monolithic
    :class:`~repro.search.index.postings.PostingsList` exactly.
    """

    __slots__ = ("_parts", "_doc_frequency", "_bases",
                 "_total_frequency", "_max_frequency")

    def __init__(self, parts: List[Tuple[int, int, LazyPostings]],
                 doc_frequency: int) -> None:
        self._parts = parts        # (base, end, postings), base order
        self._doc_frequency = doc_frequency
        # parts are immutable once handed over, so the aggregate
        # statistics and the span-lookup key list are computed once
        # here instead of on every property access / point probe
        # (term scoring reads max_frequency per bound and frequency()
        # per candidate — both used to walk the part list each time)
        self._bases = [base for base, _, _ in parts]
        self._total_frequency = sum(
            part.total_frequency for _, _, part in parts)
        self._max_frequency = max(
            part.max_frequency for _, _, part in parts)

    @property
    def doc_frequency(self) -> int:
        return self._doc_frequency

    @property
    def total_frequency(self) -> int:
        return self._total_frequency

    @property
    def max_frequency(self) -> int:
        return self._max_frequency

    def __len__(self) -> int:
        return self._doc_frequency

    def _part_of(self, doc_id: int) -> Optional[LazyPostings]:
        """The part whose ``[base, end)`` span holds ``doc_id``, by
        binary search over the (ascending, disjoint) part bases."""
        position = bisect_right(self._bases, doc_id) - 1
        if position < 0:
            return None
        base, end, part = self._parts[position]
        return part if doc_id < end else None

    def get(self, doc_id: int) -> Optional[Posting]:
        part = self._part_of(doc_id)
        return None if part is None else part.get(doc_id)

    def frequency(self, doc_id: int) -> Optional[int]:
        """Within-document frequency without materializing a
        :class:`Posting` (term-scoring fast path)."""
        part = self._part_of(doc_id)
        return None if part is None else part.frequency(doc_id)

    def doc_ids(self) -> List[int]:
        out: List[int] = []
        for _, _, part in self._parts:
            out.extend(part.doc_ids())
        return out

    def __iter__(self) -> Iterator[Posting]:
        for _, _, part in self._parts:
            yield from part


class _SegmentView:
    """One segment through the index duck API, with *global* scoring
    statistics.

    Handed to per-segment scorers by the scatter-gather top-k driver:
    ``doc_count``, ``average_field_length`` and (via the injected
    document frequency on postings) IDF are corpus-wide, so a score
    computed here is bit-identical to the monolithic one — while
    ``max_field_boost`` and the postings' ``max_frequency`` stay
    segment-local, giving the driver *tighter* (still sound) pruning
    bounds per segment.  ``parent`` is the :class:`_SegmentSet` the
    view belongs to, so global statistics always come from the same
    committed generation as the segment itself.
    """

    __slots__ = ("parent", "reader", "base", "end", "contrib_memo",
                 "bound_memo")

    def __init__(self, parent: "_SegmentSet", reader: SegmentReader,
                 base: int) -> None:
        self.parent = parent
        self.reader = reader
        self.base = base
        self.end = base + reader.doc_count
        # term-scoring memos, keyed (similarity, field, term, boost):
        # every input of a term's per-doc contributions and of its
        # score upper bound — global df and averages from ``parent``,
        # the reader's length/boost maps, ``base`` — is frozen with
        # the generation, so both values are view-lifetime constants
        # that repeat queries should not recompute (benign data race:
        # concurrent fills write identical values)
        self.contrib_memo: dict = {}
        self.bound_memo: dict = {}

    @property
    def name(self) -> str:
        return self.parent.name

    @property
    def doc_count(self) -> int:
        return self.parent.doc_count          # global, for IDF parity

    def postings(self, field_name: str, term: str
                 ) -> Optional[LazyPostings]:
        reader = self.reader
        if reader.term_meta(field_name, term) is None:
            # absent in this segment: skip the global-df aggregation
            return None
        return reader.postings(
            field_name, term, base=self.base,
            doc_frequency=self.parent.doc_frequency(field_name, term))

    def average_field_length(self, field_name: str) -> float:
        return self.parent.average_field_length(field_name)

    def field_length(self, field_name: str, doc_id: int) -> int:
        return self.reader.field_length(field_name, doc_id - self.base)

    def field_boost(self, field_name: str, doc_id: int) -> float:
        return self.reader.field_boost(field_name, doc_id - self.base)

    def local_field_maps(self, field_name: str):
        """The segment's own ``(lengths, boosts)`` dicts, keyed by
        *local* doc ids — the same space the postings block columns
        use before rebasing, so the batched scorer probes them with
        the column values directly."""
        return (self.reader.lengths(field_name),
                self.reader.boosts(field_name))

    def max_field_boost(self, field_name: str) -> float:
        return self.reader.max_field_boost(field_name)


class _SegmentSet:
    """One committed generation's complete read state: the manifest,
    its open readers, doc-id bases, per-term stat caches and segment
    views, frozen together.

    This is the unit of concurrency control for serving: a refresh
    builds a whole new ``_SegmentSet`` and swaps one attribute on the
    :class:`SegmentedIndex`, so any single reference to a set is
    internally consistent forever.  The set is **refcounted** —
    queries pin it for their full lifetime via
    :meth:`SegmentedIndex.pinned` — and the mmaps only close when the
    set has been retired by a newer generation *and* the last pin is
    released.  Without the deferred close, a refresh under concurrent
    readers yanks the mmap out from under in-flight postings decodes
    (the PR 6 implementation did exactly that).
    """

    __slots__ = ("manifest", "readers", "bases", "views", "_df_cache",
                 "_avg_len_cache", "_max_boost_cache", "_doc_cache",
                 "_guard", "_refs", "_retired")

    def __init__(self, manifest: Manifest,
                 readers: List[SegmentReader],
                 bases: List[int]) -> None:
        self.manifest = manifest
        self.readers = readers
        self.bases = bases
        self.views: List[_SegmentView] = [
            _SegmentView(self, reader, base)
            for reader, base in zip(readers, bases)]
        self._df_cache: Dict[Tuple[str, str], int] = {}
        self._avg_len_cache: Dict[str, float] = {}
        self._max_boost_cache: Dict[str, float] = {}
        self._doc_cache: Dict[int, Document] = {}
        self._guard = threading.Lock()
        self._refs = 0
        self._retired = False

    @classmethod
    def empty(cls, name: str) -> "_SegmentSet":
        return cls(Manifest(generation=-1, name=name, counter=1,
                            segments=()), [], [])

    @classmethod
    def open(cls, path: Path, manifest: Manifest) -> "_SegmentSet":
        readers: List[SegmentReader] = []
        bases: List[int] = []
        base = 0
        for info in manifest.segments:
            reader = SegmentReader(path / info.file)
            if reader.doc_count != info.doc_count:
                for opened in (*readers, reader):
                    opened.close()
                raise IndexError_(
                    f"segment {info.file} holds {reader.doc_count} "
                    f"docs, manifest says {info.doc_count}")
            readers.append(reader)
            bases.append(base)
            base += reader.doc_count
        return cls(manifest, readers, bases)

    # -- pin protocol --------------------------------------------------

    def try_pin(self) -> bool:
        """Take a pin, or refuse if the set was already retired.

        Refusing is what closes the TOCTOU window in
        :meth:`SegmentedIndex.pinned`: a reader that grabbed
        ``_state`` just before a refresh swapped it out would
        otherwise pin a set whose readers :meth:`retire` has already
        closed (or is free to close the moment this pin is released).
        ``_retired`` flips under the same ``_guard`` that protects the
        refcount, so a successful pin guarantees the readers stay open
        until the matching :meth:`unpin`.
        """
        with self._guard:
            if self._retired:
                return False
            self._refs += 1
            return True

    def unpin(self) -> None:
        with self._guard:
            self._refs -= 1
            close_now = self._retired and self._refs == 0
        if close_now:
            self._close_readers()

    def retire(self) -> None:
        """Mark the set as superseded; closes immediately when nobody
        holds a pin, otherwise the last :meth:`unpin` closes."""
        with self._guard:
            self._retired = True
            close_now = self._refs == 0
        if close_now:
            self._close_readers()

    def _close_readers(self) -> None:
        for reader in self.readers:
            reader.close()

    @property
    def closed(self) -> bool:
        """True once every reader's mmap has been released (an empty
        set is trivially closed).  Observability hook for the
        concurrency stress suite."""
        return all(reader._mmap.closed for reader in self.readers)

    # -- identity ------------------------------------------------------

    @property
    def name(self) -> str:
        return self.manifest.name

    @property
    def generation(self) -> int:
        """The committed manifest generation (the cache-key epoch)."""
        return self.manifest.generation

    @property
    def doc_count(self) -> int:
        return (self.bases[-1] + self.readers[-1].doc_count
                if self.readers else 0)

    @property
    def segment_count(self) -> int:
        return len(self.readers)

    def segment_views(self) -> List[_SegmentView]:
        """Per-segment duck indexes for the scatter-gather top-k
        driver, in doc-id (manifest) order."""
        return self.views

    def _locate(self, doc_id: int) -> Tuple[SegmentReader, int]:
        if not 0 <= doc_id < self.doc_count:
            raise IndexError_(f"unknown doc_id {doc_id}")
        position = bisect_right(self.bases, doc_id) - 1
        return self.readers[position], doc_id - self.bases[position]

    # -- the InvertedIndex read API ------------------------------------

    def field_names(self) -> List[str]:
        names = set()
        for reader in self.readers:
            names.update(reader.field_names())
        return sorted(names)

    def doc_frequency(self, field_name: str, term: str) -> int:
        """Corpus-wide document frequency, from term-dictionary
        metadata only — no postings decode.  The cache is set-local,
        so a racing duplicate computation writes the same value."""
        key = (field_name, term)
        cached = self._df_cache.get(key)
        if cached is None:
            cached = 0
            for reader in self.readers:
                meta = reader.term_meta(field_name, term)
                if meta is not None:
                    cached += meta.doc_frequency
            self._df_cache[key] = cached
        return cached

    def postings(self, field_name: str, term: str
                 ) -> Optional[_MultiPostings]:
        doc_frequency = self.doc_frequency(field_name, term)
        if doc_frequency == 0:
            return None
        parts = []
        for reader, base in zip(self.readers, self.bases):
            part = reader.postings(field_name, term, base=base,
                                   doc_frequency=doc_frequency)
            if part is not None:
                parts.append((base, base + reader.doc_count, part))
        return _MultiPostings(parts, doc_frequency)

    def terms(self, field_name: str) -> Iterator[str]:
        merged = set()
        for reader in self.readers:
            merged.update(reader.term_metas(field_name))
        return iter(sorted(merged))

    def terms_with_prefix(self, field_name: str, prefix: str
                          ) -> Iterator[str]:
        for term in self.terms(field_name):
            if term.startswith(prefix):
                yield term

    def field_length(self, field_name: str, doc_id: int) -> int:
        reader, local = self._locate(doc_id)
        return reader.field_length(field_name, local)

    def field_boost(self, field_name: str, doc_id: int) -> float:
        reader, local = self._locate(doc_id)
        return reader.field_boost(field_name, local)

    def max_field_boost(self, field_name: str) -> float:
        """Set-wide boost bound, memoized: the set is immutable, and
        every scorer construction asks for this — looping over the
        readers each time was a measurable slice of the segmented
        hot path.  Racing writers store the same value (benign)."""
        bound = self._max_boost_cache.get(field_name)
        if bound is None:
            bound = 1.0
            for reader in self.readers:
                bound = max(bound, reader.max_field_boost(field_name))
            self._max_boost_cache[field_name] = bound
        return bound

    def average_field_length(self, field_name: str) -> float:
        """Exact corpus-wide mean: the per-segment integer sums from
        the headers add associatively, so the float division happens
        once on the same operands as the monolithic computation.
        Memoized per set (immutable; racing writers store the same
        float, benign like :meth:`doc_frequency`'s cache)."""
        average = self._avg_len_cache.get(field_name)
        if average is None:
            total = 0
            docs = 0
            for reader in self.readers:
                total += reader.sum_lengths(field_name)
                docs += reader.docs_with_field(field_name)
            average = total / docs if docs else 0.0
            self._avg_len_cache[field_name] = average
        return average

    def docs_with_field(self, field_name: str) -> int:
        return sum(reader.docs_with_field(field_name)
                   for reader in self.readers)

    def stored_document(self, doc_id: int) -> Document:
        """The materialized stored document, built once per doc per
        generation and shared after that (the set is frozen, so
        callers must treat it as read-only — retrieval only ever
        ``get``\\ s fields)."""
        document = self._doc_cache.get(doc_id)
        if document is not None:
            return document
        reader, local = self._locate(doc_id)
        document = Document()
        for name, values in reader.stored_fields(local).items():
            for value in values:
                document.add(Field(name, value))
        self._doc_cache[doc_id] = document
        return document

    def stored_value(self, doc_id: int,
                     field_name: str) -> Optional[str]:
        reader, local = self._locate(doc_id)
        values = reader.stored_fields(local).get(field_name)
        return values[0] if values else None

    def unique_term_count(self, field_name: Optional[str] = None) -> int:
        if field_name is not None:
            merged = set()
            for reader in self.readers:
                merged.update(reader.term_metas(field_name))
            return len(merged)
        fields = set()
        for reader in self.readers:
            fields.update(reader.indexed_fields())
        return sum(self.unique_term_count(field) for field in fields)

    def __repr__(self) -> str:    # pragma: no cover - debugging aid
        return (f"<_SegmentSet {self.name!r} generation "
                f"{self.generation}: {self.segment_count} segments, "
                f"refs {self._refs}>")


class SegmentedIndex:
    """Read-only :class:`InvertedIndex` API over a committed segment
    set.

    Global statistics come from per-segment header summaries (integer
    sums, so they equal the monolithic figures exactly); per-document
    reads route to the owning segment by doc-id range.
    :attr:`generation` mirrors the committed manifest generation —
    :class:`~repro.search.searcher.QueryResultCache` keys on it, so
    :meth:`refresh` after a commit invalidates stale entries the same
    way in-memory index mutation does.

    **Concurrency contract.**  All read state lives in one immutable
    refcounted :class:`_SegmentSet`; :meth:`refresh` swaps it
    atomically and retires the old set, whose mmaps stay open until
    the last pinned reader releases it.  A multi-call operation that
    must see a single generation end to end (a scored query: cache
    key, postings, lengths, stored fields) wraps itself in
    :meth:`pinned` — :class:`~repro.search.searcher.IndexSearcher`
    does this automatically.  Individual method calls on this class
    are each internally consistent, but two *separate* calls may
    straddle a refresh.
    """

    def __init__(self, directory: Union[IndexDirectory, PathLike],
                 name: Optional[str] = None) -> None:
        if not isinstance(directory, IndexDirectory):
            directory = IndexDirectory(directory,
                                       name=name or "index")
        self.directory = directory
        self._state = _SegmentSet.empty(directory.name)
        #: serializes refresh/close (the swap itself is one attribute
        #: assignment; this keeps two refreshes from both opening
        #: readers for the same generation)
        self._refresh_lock = threading.Lock()
        self.refresh()

    # -- lifecycle -----------------------------------------------------

    def refresh(self) -> bool:
        """Re-open at the newest committed manifest.  Returns True
        when the live segment set changed.  Safe under concurrent
        readers: in-flight pinned queries keep serving the old set,
        which closes only when its last pin is released."""
        with self._refresh_lock:
            manifest = self.directory.manifest()
            if manifest.generation == self._state.generation:
                return False
            state = _SegmentSet.open(self.directory.path, manifest)
            old, self._state = self._state, state
            old.retire()
            return True

    def close(self) -> None:
        """Release this handle's segment set.  Pinned in-flight
        queries finish against the old set before it really closes."""
        with self._refresh_lock:
            old, self._state = self._state, _SegmentSet.empty(
                self.directory.name)
            old.retire()

    def __enter__(self) -> "SegmentedIndex":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @contextmanager
    def pinned(self) -> Iterator[_SegmentSet]:
        """Pin the current segment set for a multi-call read.

        Yields the :class:`_SegmentSet`, which serves the full
        :class:`InvertedIndex` read API (plus ``segment_views`` for
        the scatter-gather driver) frozen at one manifest generation.
        Concurrent :meth:`refresh`/:meth:`close` calls cannot close
        its readers until the ``with`` block exits.

        Reading ``self._state`` and pinning it are two steps, so a
        refresh can retire the set in between; :meth:`_SegmentSet.try_pin`
        detects that (retired flips under the set's own guard) and the
        loop retries against the freshly swapped-in state.  Each retry
        observes a set that some refresh/close published *after* the
        failed candidate, so the loop terminates as soon as swaps
        stop — it cannot spin against a stable ``_state``.
        """
        while True:
            state = self._state
            if state.try_pin():
                break
        try:
            yield state
        finally:
            state.unpin()

    # -- identity ------------------------------------------------------

    @property
    def name(self) -> str:
        return self._state.name

    @property
    def generation(self) -> int:
        """The committed manifest generation (the cache-key epoch)."""
        return self._state.generation

    @property
    def doc_count(self) -> int:
        return self._state.doc_count

    @property
    def segment_count(self) -> int:
        return self._state.segment_count

    def segment_views(self) -> List[_SegmentView]:
        """Per-segment duck indexes for the scatter-gather top-k
        driver, in doc-id (manifest) order."""
        return self._state.segment_views()

    # -- the InvertedIndex read API ------------------------------------
    # each call reads self._state once, so it is internally consistent;
    # cross-call consistency is what pinned() is for.

    def field_names(self) -> List[str]:
        return self._state.field_names()

    def doc_frequency(self, field_name: str, term: str) -> int:
        return self._state.doc_frequency(field_name, term)

    def postings(self, field_name: str, term: str
                 ) -> Optional[_MultiPostings]:
        return self._state.postings(field_name, term)

    def terms(self, field_name: str) -> Iterator[str]:
        return self._state.terms(field_name)

    def terms_with_prefix(self, field_name: str, prefix: str
                          ) -> Iterator[str]:
        return self._state.terms_with_prefix(field_name, prefix)

    def field_length(self, field_name: str, doc_id: int) -> int:
        return self._state.field_length(field_name, doc_id)

    def field_boost(self, field_name: str, doc_id: int) -> float:
        return self._state.field_boost(field_name, doc_id)

    def max_field_boost(self, field_name: str) -> float:
        return self._state.max_field_boost(field_name)

    def average_field_length(self, field_name: str) -> float:
        return self._state.average_field_length(field_name)

    def docs_with_field(self, field_name: str) -> int:
        return self._state.docs_with_field(field_name)

    def stored_document(self, doc_id: int) -> Document:
        return self._state.stored_document(doc_id)

    def stored_value(self, doc_id: int,
                     field_name: str) -> Optional[str]:
        return self._state.stored_value(doc_id, field_name)

    def unique_term_count(self, field_name: Optional[str] = None) -> int:
        return self._state.unique_term_count(field_name)

    # -- stats/debugging ------------------------------------------------

    def segment_infos(self) -> Tuple[SegmentInfo, ...]:
        return self._state.manifest.segments

    def to_inverted(self) -> InvertedIndex:
        """Materialize the whole segment set into one mutable index
        (parity tests and JSON export — not a serving path)."""
        with self.pinned() as state:
            index = InvertedIndex(name=state.name)
            for reader in state.readers:
                index.merge(reader.to_inverted())
            return index

    def __repr__(self) -> str:    # pragma: no cover - debugging aid
        return (f"<SegmentedIndex {self.name!r}: {self.doc_count} docs "
                f"in {self.segment_count} segments, "
                f"generation {self.generation}>")
