"""Optional compiled postings kernels (``REPRO_KERNELS`` gated).

The serving hot path spends most of its per-query time in two tiny
inner loops: LEB128 varint decode and the decode-and-split pass that
turns one postings block into typed ``(doc_ids, freqs)`` columns.
Both are pure integer churn — exactly the kind of loop a few lines of
C run an order of magnitude faster than CPython.

This module compiles those two loops at import time with the system C
compiler (``cc``/``gcc``, nothing to install) and loads them through
:mod:`cffi` in ABI mode, so read-only buffers — the segment
``mmap`` — pass zero-copy via ``ffi.from_buffer``.  Three properties
keep the layer safe to ship:

* **opt-in** — kernels activate only when the ``REPRO_KERNELS``
  environment variable is truthy (``1``/``true``/``on``/``yes``).
  Unset or falsy means the stdlib path runs, byte-for-byte the code
  that shipped before this module existed.
* **always-available fallback** — any failure (no compiler, no cffi,
  dlopen error, malformed input the C side refuses) silently falls
  back to the stdlib decoder, which remains the reference
  implementation and the authority on error messages.
* **parity self-check** — enabling runs both implementations over a
  generated corpus of adversarial varint streams and refuses to
  enable on any mismatch, incrementing ``kernel_parity_failures``;
  a bit-difference can disable kernels but never change results.

Exported stats feed the ``kernel_*`` metrics rows documented in
``docs/observability.md``.
"""

from __future__ import annotations

import hashlib
import os
import subprocess
import tempfile
import threading
from array import array
from pathlib import Path
from typing import Optional, Tuple

__all__ = ["available", "enabled", "set_enabled", "status", "stats",
           "decode_uvarints", "split_postings"]

_TRUTHY = {"1", "true", "on", "yes"}

_C_SOURCE = r"""
/* LEB128 postings kernels.  Every function returns a negative code on
 * malformed input instead of guessing — the Python caller then falls
 * back to the stdlib decoder, which owns error semantics.  Values are
 * capped at 64 bits (segment doc ids and frequencies are far below);
 * a wider varint returns -1 and falls back to arbitrary-precision
 * Python. */

long long k_decode_uvarints(const unsigned char *data, long long nbytes,
                            long long *out)
{
    long long pos = 0, count = 0;
    unsigned long long value = 0;
    int shift = 0;
    while (pos < nbytes) {
        unsigned char byte = data[pos++];
        if (byte & 0x80u) {
            if (shift > 56) return -1;
            value |= (unsigned long long)(byte & 0x7Fu) << shift;
            shift += 7;
        } else {
            out[count++] = (long long)(value
                           | ((unsigned long long)byte << shift));
            value = 0;
            shift = 0;
        }
    }
    if (shift) return -2;   /* byte range ends inside a varint */
    return count;
}

/* Decode one postings block (doc_delta, freq, position-delta*)* into
 * typed columns in a single pass.  ``entries[i]`` is the index of doc
 * i's first position delta inside the block's flat varint stream —
 * the same offsets the Python splitter produces.  Returns the number
 * of varints consumed, or a negative code on malformed input. */
long long k_split_postings(const unsigned char *data, long long nbytes,
                           long long ndocs,
                           long long *doc_ids, long long *freqs,
                           long long *entries, long long *max_freq)
{
    long long pos = 0, vindex = 0, doc_id = 0, best = 0;
    for (long long i = 0; i < ndocs; i++) {
        unsigned long long value;
        int shift;
        unsigned char byte;
        /* doc-id delta */
        value = 0; shift = 0;
        do {
            if (pos >= nbytes) return -2;
            byte = data[pos++];
            if (shift > 56 && (byte & 0x80u)) return -1;
            value |= (unsigned long long)(byte & 0x7Fu) << shift;
            shift += 7;
        } while (byte & 0x80u);
        vindex++;
        doc_id += (long long)value;
        doc_ids[i] = doc_id;
        /* frequency */
        value = 0; shift = 0;
        do {
            if (pos >= nbytes) return -2;
            byte = data[pos++];
            if (shift > 56 && (byte & 0x80u)) return -1;
            value |= (unsigned long long)(byte & 0x7Fu) << shift;
            shift += 7;
        } while (byte & 0x80u);
        vindex++;
        {
            long long freq = (long long)value;
            freqs[i] = freq;
            entries[i] = vindex;
            if (freq > best) best = freq;
            /* skip the position deltas; only count them */
            for (long long p = 0; p < freq; p++) {
                do {
                    if (pos >= nbytes) return -2;
                    byte = data[pos++];
                } while (byte & 0x80u);
                vindex++;
            }
        }
    }
    if (pos != nbytes) return -3;   /* trailing bytes: corrupt block */
    *max_freq = best;
    return vindex;
}
"""

_CDEF = """
long long k_decode_uvarints(const unsigned char *data, long long nbytes,
                            long long *out);
long long k_split_postings(const unsigned char *data, long long nbytes,
                           long long ndocs,
                           long long *doc_ids, long long *freqs,
                           long long *entries, long long *max_freq);
"""

_lock = threading.Lock()
_ffi = None
_lib = None
_enabled = False
_status = {"requested": False, "enabled": False, "reason": "not requested"}
_blocks_decoded = 0
_values_decoded = 0
_parity_failures = 0


def _metrics():
    # deferred import: observability sits above this package
    from repro.core.observability import get_observability
    return get_observability().metrics


def _publish_gauge() -> None:
    try:
        metrics = _metrics()
        if metrics.enabled:
            metrics.gauge("kernel_enabled",
                          "1 when compiled postings kernels are active"
                          ).set(1.0 if _enabled else 0.0)
    except Exception:        # pragma: no cover - metrics must never block
        pass


def _compiler() -> Optional[str]:
    for name in ("cc", "gcc", "clang"):
        for prefix in os.environ.get("PATH", "").split(os.pathsep):
            candidate = Path(prefix) / name
            if candidate.is_file() and os.access(candidate, os.X_OK):
                return str(candidate)
    return None


def _build_library() -> Tuple[Optional[object], Optional[object], str]:
    """Compile and dlopen the kernel library.  Returns
    ``(ffi, lib, reason)`` — ``lib`` is None on any failure, with the
    reason recorded for :func:`status`."""
    try:
        import cffi
    except ImportError:                      # pragma: no cover
        return None, None, "cffi unavailable"
    compiler = _compiler()
    if compiler is None:                     # pragma: no cover
        return None, None, "no C compiler on PATH"
    digest = hashlib.sha256(_C_SOURCE.encode("utf-8")).hexdigest()[:16]
    cache = Path(os.environ.get("REPRO_KERNELS_CACHE")
                 or Path(tempfile.gettempdir()) / "repro-kernels")
    library = cache / f"repro_kernels_{digest}.so"
    try:
        if not library.is_file():
            cache.mkdir(parents=True, exist_ok=True)
            source = cache / f"repro_kernels_{digest}.c"
            source.write_text(_C_SOURCE)
            scratch = cache / f".{library.name}.{os.getpid()}.tmp"
            subprocess.run(
                [compiler, "-O3", "-fPIC", "-shared", "-o",
                 str(scratch), str(source)],
                check=True, capture_output=True, timeout=120)
            os.replace(scratch, library)     # atomic publish
        ffi = cffi.FFI()
        ffi.cdef(_CDEF)
        lib = ffi.dlopen(str(library))
    except Exception as exc:
        return None, None, f"kernel build failed: {exc}"
    return ffi, lib, "ok"


# ----------------------------------------------------------------------
# kernel-backed entry points
# ----------------------------------------------------------------------

def decode_uvarints(data, pos: int, end: int) -> Optional[array]:
    """Kernel bulk varint decode over ``data[pos:end]`` as an
    ``array('q')``, or ``None`` when the kernel declines (disabled,
    value wider than 64 bits) — the caller then uses the stdlib path.
    Raises the same ``ValueError`` shapes as the stdlib decoder for
    malformed ranges, so error behaviour is backend-independent."""
    global _values_decoded
    if not _enabled:
        return None
    size = len(data)
    if not 0 <= pos <= end <= size:
        raise ValueError(
            f"varint byte range [{pos}, {end}) does not fit the "
            f"{size}-byte buffer")
    nbytes = end - pos
    out = array("q", bytes(8 * nbytes))
    buffer = _ffi.cast("const unsigned char *",
                       _ffi.from_buffer(data)) + pos
    count = _lib.k_decode_uvarints(
        buffer, nbytes, _ffi.cast("long long *", _ffi.from_buffer(out)))
    if count == -2:
        raise ValueError("byte range ends inside a varint")
    if count < 0:
        return None                          # >64-bit value: fall back
    del out[count:]
    with _lock:
        _values_decoded += count
    return out


def split_postings(data, start: int, end: int, ndocs: int
                   ) -> Optional[Tuple[array, array, array, int]]:
    """Decode one postings block into typed columns in a single C
    pass.  Returns ``(doc_ids, freqs, entries, max_freq)`` or ``None``
    when the kernel declines — the Python splitter then runs and owns
    the (corrupt-segment) error semantics."""
    global _blocks_decoded
    if not _enabled:
        return None
    if not 0 <= start <= end <= len(data) or ndocs <= 0:
        return None
    doc_ids = array("q", bytes(8 * ndocs))
    freqs = array("q", bytes(8 * ndocs))
    entries = array("q", bytes(8 * ndocs))
    max_freq = _ffi.new("long long *")
    buffer = _ffi.cast("const unsigned char *",
                       _ffi.from_buffer(data)) + start
    consumed = _lib.k_split_postings(
        buffer, end - start, ndocs,
        _ffi.cast("long long *", _ffi.from_buffer(doc_ids)),
        _ffi.cast("long long *", _ffi.from_buffer(freqs)),
        _ffi.cast("long long *", _ffi.from_buffer(entries)),
        max_freq)
    if consumed < 0:
        return None
    with _lock:
        _blocks_decoded += 1
    return doc_ids, freqs, entries, max_freq[0]


# ----------------------------------------------------------------------
# parity self-check
# ----------------------------------------------------------------------

def _self_check() -> bool:
    """Both implementations over adversarial streams — every value in
    every stream must match bit for bit before kernels may serve."""
    global _parity_failures
    from repro.search.index import codec

    out = bytearray()

    def put(value: int) -> None:
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                out.append(byte | 0x80)
            else:
                out.append(byte)
                return

    samples = [0, 1, 127, 128, 129, 16383, 16384, 2**32 - 1,
               2**53, 2**63 - 1]
    for value in samples:
        put(value)
    payload = bytes(out)
    reference = codec.decode_uvarints(payload, 0, len(payload))
    got = decode_uvarints(payload, 0, len(payload))
    if got is None or list(got) != reference:
        with _lock:
            _parity_failures += 1
        return False

    # a synthetic postings block: (doc_delta, freq, position deltas)*
    out = bytearray()
    docs = [(3, [1, 5]), (130, [0]), (131, [2, 2, 9000]),
            (2**40, [7])]
    previous = 0
    for doc_id, positions in docs:
        put(doc_id - previous)
        previous = doc_id
        put(len(positions))
        for delta in positions:
            put(delta)
    payload = bytes(out)
    split = split_postings(payload, 0, len(payload), len(docs))
    if split is None:
        with _lock:
            _parity_failures += 1
        return False
    doc_ids, freqs, entries, max_freq = split
    values = codec.decode_uvarints(payload, 0, len(payload))
    want_docs, want_freqs, want_entries = [], [], []
    position = 0
    doc_id = 0
    for _ in docs:
        doc_id += values[position]
        want_docs.append(doc_id)
        want_freqs.append(values[position + 1])
        want_entries.append(position + 2)
        position += 2 + values[position + 1]
    if (list(doc_ids) != want_docs or list(freqs) != want_freqs
            or list(entries) != want_entries
            or max_freq != max(want_freqs)):
        with _lock:
            _parity_failures += 1
        return False
    return True


# ----------------------------------------------------------------------
# gating
# ----------------------------------------------------------------------

def set_enabled(flag: bool) -> bool:
    """Enable or disable the kernels at runtime (tests and the
    ``REPRO_KERNELS`` import-time gate both land here).  Enabling
    compiles on first use and runs the parity self-check; any failure
    leaves the stdlib path active.  Returns the resulting state."""
    global _ffi, _lib, _enabled
    with _lock:
        _status["requested"] = bool(flag)
        if not flag:
            _enabled = False
            _status["enabled"] = False
            _status["reason"] = "disabled"
            _publish_gauge()
            return False
        if _lib is None:
            _ffi, _lib, reason = _build_library()
            if _lib is None:
                _enabled = False
                _status["enabled"] = False
                _status["reason"] = reason
                _publish_gauge()
                return False
        _enabled = True       # provisionally, for the self-check
    if not _self_check():
        with _lock:
            _enabled = False
            _status["enabled"] = False
            _status["reason"] = "parity self-check failed"
        _publish_gauge()
        return False
    with _lock:
        _status["enabled"] = True
        _status["reason"] = "ok"
    _publish_gauge()
    return True


def available() -> bool:
    """True when the library compiles and passes parity (forces a
    build attempt, but does not enable)."""
    if _lib is not None:
        return True
    was = _enabled
    result = set_enabled(True)
    if not was:
        set_enabled(False)
    return result


def enabled() -> bool:
    return _enabled


def status() -> dict:
    with _lock:
        return dict(_status)


def stats() -> dict:
    """Exact counters behind the ``kernel_*`` metric rows."""
    with _lock:
        return {"enabled": _enabled,
                "blocks_decoded": _blocks_decoded,
                "values_decoded": _values_decoded,
                "parity_failures": _parity_failures}


if os.environ.get("REPRO_KERNELS", "").strip().lower() in _TRUTHY:
    set_enabled(True)
