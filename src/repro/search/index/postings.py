"""Postings: the inverted index's core data structure."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List

__all__ = ["Posting", "PostingsList"]


@dataclass
class Posting:
    """Occurrences of one term in one document field.

    Attributes:
        doc_id: internal document number.
        positions: token positions of each occurrence (for phrases).
    """

    doc_id: int
    positions: List[int] = field(default_factory=list)

    @property
    def frequency(self) -> int:
        return len(self.positions)

    def to_json(self) -> list:
        return [self.doc_id, self.positions]

    @classmethod
    def from_json(cls, data: list) -> "Posting":
        return cls(doc_id=data[0], positions=list(data[1]))


class PostingsList:
    """Doc-ordered postings for one (field, term) pair.

    Besides the postings themselves the list maintains two summary
    statistics *incrementally* (updated on every
    :meth:`add_occurrence`, so the writer and :meth:`InvertedIndex.merge
    <repro.search.index.inverted.InvertedIndex.merge>` keep them fresh
    for free):

    * :attr:`total_frequency` — total occurrence count, used by the
      stats/scoring path; and
    * :attr:`max_frequency` — the highest within-document frequency,
      the per-(field, term) *max-impact* figure that
      :meth:`Similarity.max_score
      <repro.search.similarity.Similarity.max_score>` turns into a
      score upper bound for top-k pruning.
    """

    __slots__ = ("_postings", "_by_doc", "_total_frequency",
                 "_max_frequency")

    def __init__(self) -> None:
        self._postings: List[Posting] = []
        self._by_doc: Dict[int, Posting] = {}
        self._total_frequency = 0
        self._max_frequency = 0

    def add_occurrence(self, doc_id: int, position: int) -> None:
        """Record one term occurrence.  doc_ids must arrive
        non-decreasing (the writer guarantees this)."""
        posting = self._by_doc.get(doc_id)
        if posting is None:
            posting = Posting(doc_id)
            self._postings.append(posting)
            self._by_doc[doc_id] = posting
        posting.positions.append(position)
        self._total_frequency += 1
        if len(posting.positions) > self._max_frequency:
            self._max_frequency = len(posting.positions)

    @property
    def doc_frequency(self) -> int:
        return len(self._postings)

    @property
    def total_frequency(self) -> int:
        return self._total_frequency

    @property
    def max_frequency(self) -> int:
        """Highest per-document frequency (the max-impact bound)."""
        return self._max_frequency

    def get(self, doc_id: int) -> Posting | None:
        return self._by_doc.get(doc_id)

    def frequency(self, doc_id: int) -> int | None:
        """Within-document frequency of ``doc_id``, or ``None`` when
        the document does not match.  Term scoring uses this instead
        of :meth:`get` so postings backed by decoded arrays (segments)
        never materialize position lists just to count them."""
        posting = self._by_doc.get(doc_id)
        return None if posting is None else len(posting.positions)

    def doc_ids(self) -> List[int]:
        """Matching doc ids, in postings (ascending) order."""
        return [posting.doc_id for posting in self._postings]

    def __iter__(self) -> Iterator[Posting]:
        return iter(self._postings)

    def __len__(self) -> int:
        return len(self._postings)

    def _append(self, posting: Posting) -> None:
        """Adopt a fully-built posting (deserialization path); keeps
        the incremental statistics in sync."""
        self._postings.append(posting)
        self._by_doc[posting.doc_id] = posting
        self._total_frequency += posting.frequency
        if posting.frequency > self._max_frequency:
            self._max_frequency = posting.frequency

    def to_json(self) -> list:
        return [posting.to_json() for posting in self._postings]

    @classmethod
    def from_json(cls, data: list) -> "PostingsList":
        postings = cls()
        for entry in data:
            postings._append(Posting.from_json(entry))
        return postings
