"""Postings: the inverted index's core data structure."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List

__all__ = ["Posting", "PostingsList"]


@dataclass
class Posting:
    """Occurrences of one term in one document field.

    Attributes:
        doc_id: internal document number.
        positions: token positions of each occurrence (for phrases).
    """

    doc_id: int
    positions: List[int] = field(default_factory=list)

    @property
    def frequency(self) -> int:
        return len(self.positions)

    def to_json(self) -> list:
        return [self.doc_id, self.positions]

    @classmethod
    def from_json(cls, data: list) -> "Posting":
        return cls(doc_id=data[0], positions=list(data[1]))


class PostingsList:
    """Doc-ordered postings for one (field, term) pair."""

    __slots__ = ("_postings", "_by_doc")

    def __init__(self) -> None:
        self._postings: List[Posting] = []
        self._by_doc: Dict[int, Posting] = {}

    def add_occurrence(self, doc_id: int, position: int) -> None:
        """Record one term occurrence.  doc_ids must arrive
        non-decreasing (the writer guarantees this)."""
        posting = self._by_doc.get(doc_id)
        if posting is None:
            posting = Posting(doc_id)
            self._postings.append(posting)
            self._by_doc[doc_id] = posting
        posting.positions.append(position)

    @property
    def doc_frequency(self) -> int:
        return len(self._postings)

    @property
    def total_frequency(self) -> int:
        return sum(p.frequency for p in self._postings)

    def get(self, doc_id: int) -> Posting | None:
        return self._by_doc.get(doc_id)

    def __iter__(self) -> Iterator[Posting]:
        return iter(self._postings)

    def __len__(self) -> int:
        return len(self._postings)

    def to_json(self) -> list:
        return [posting.to_json() for posting in self._postings]

    @classmethod
    def from_json(cls, data: list) -> "PostingsList":
        postings = cls()
        for entry in data:
            posting = Posting.from_json(entry)
            postings._postings.append(posting)
            postings._by_doc[posting.doc_id] = posting
        return postings
