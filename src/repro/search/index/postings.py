"""Postings: the inverted index's core data structure."""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["Posting", "PostingsList", "SKIP_BLOCK"]

#: Documents per skip block.  Shared by the segment codec (which
#: persists one skip entry and one block-max statistic per block, see
#: :mod:`repro.search.index.segment`), the in-memory block API below,
#: and the top-k scan's block-at-a-time pruning arithmetic — all three
#: must agree on the block size for the persisted maxima to bound the
#: right documents.
SKIP_BLOCK = 64


@dataclass
class Posting:
    """Occurrences of one term in one document field.

    Attributes:
        doc_id: internal document number.
        positions: token positions of each occurrence (for phrases).
    """

    doc_id: int
    positions: List[int] = field(default_factory=list)

    @property
    def frequency(self) -> int:
        return len(self.positions)

    def to_json(self) -> list:
        return [self.doc_id, self.positions]

    @classmethod
    def from_json(cls, data: list) -> "Posting":
        return cls(doc_id=data[0], positions=list(data[1]))


class PostingsList:
    """Doc-ordered postings for one (field, term) pair.

    Besides the postings themselves the list maintains two summary
    statistics *incrementally* (updated on every
    :meth:`add_occurrence`, so the writer and :meth:`InvertedIndex.merge
    <repro.search.index.inverted.InvertedIndex.merge>` keep them fresh
    for free):

    * :attr:`total_frequency` — total occurrence count, used by the
      stats/scoring path; and
    * :attr:`max_frequency` — the highest within-document frequency,
      the per-(field, term) *max-impact* figure that
      :meth:`Similarity.max_score
      <repro.search.similarity.Similarity.max_score>` turns into a
      score upper bound for top-k pruning.
    """

    __slots__ = ("_postings", "_by_doc", "_total_frequency",
                 "_max_frequency", "_columns")

    def __init__(self) -> None:
        self._postings: List[Posting] = []
        self._by_doc: Dict[int, Posting] = {}
        self._total_frequency = 0
        self._max_frequency = 0
        #: typed (doc_ids, freqs) columns for the block API; built on
        #: first block access, dropped on any mutation
        self._columns: Optional[Tuple[array, array]] = None

    def add_occurrence(self, doc_id: int, position: int) -> None:
        """Record one term occurrence.  doc_ids must arrive
        non-decreasing (the writer guarantees this)."""
        posting = self._by_doc.get(doc_id)
        if posting is None:
            posting = Posting(doc_id)
            self._postings.append(posting)
            self._by_doc[doc_id] = posting
        posting.positions.append(position)
        self._total_frequency += 1
        self._columns = None
        if len(posting.positions) > self._max_frequency:
            self._max_frequency = len(posting.positions)

    @property
    def doc_frequency(self) -> int:
        return len(self._postings)

    @property
    def total_frequency(self) -> int:
        return self._total_frequency

    @property
    def max_frequency(self) -> int:
        """Highest per-document frequency (the max-impact bound)."""
        return self._max_frequency

    def get(self, doc_id: int) -> Posting | None:
        return self._by_doc.get(doc_id)

    def frequency(self, doc_id: int) -> int | None:
        """Within-document frequency of ``doc_id``, or ``None`` when
        the document does not match.  Term scoring uses this instead
        of :meth:`get` so postings backed by decoded arrays (segments)
        never materialize position lists just to count them."""
        posting = self._by_doc.get(doc_id)
        return None if posting is None else len(posting.positions)

    def doc_ids(self) -> List[int]:
        """Matching doc ids, in postings (ascending) order."""
        return [posting.doc_id for posting in self._postings]

    def freqs(self) -> "array":
        """Within-document frequencies aligned with :meth:`doc_ids`
        (the typed column, shared — read-only)."""
        return self._ensure_columns()[1]

    # -- block API ----------------------------------------------------
    #
    # The same shape LazyPostings exposes over a decoded segment term:
    # documents in blocks of SKIP_BLOCK, typed (doc_ids, frequencies)
    # columns per block, a per-block max frequency.  Here the columns
    # are materialized lazily from the posting objects (and dropped on
    # mutation), so the batched scoring loop runs identically over
    # in-memory and segment-backed indexes.

    @property
    def base(self) -> int:
        """Doc-id offset of the backing columns (always 0 here; the
        segment view rebases)."""
        return 0

    def block_count(self) -> int:
        """Number of skip blocks (``ceil(doc_frequency /
        SKIP_BLOCK)``)."""
        return -(-len(self._postings) // SKIP_BLOCK)

    def _ensure_columns(self) -> Tuple[array, array]:
        columns = self._columns
        if columns is None:
            doc_ids = array(
                "q", (posting.doc_id for posting in self._postings))
            freqs = array(
                "q", (len(posting.positions)
                      for posting in self._postings))
            columns = self._columns = (doc_ids, freqs)
        return columns

    def block_max_frequency(self, block: int) -> int:
        """Highest within-document frequency inside ``block``."""
        _, freqs = self._ensure_columns()
        start = block * SKIP_BLOCK
        return max(freqs[start:start + SKIP_BLOCK])

    def block_columns(self, block: int) -> Tuple[memoryview, memoryview]:
        """``(doc_ids, frequencies)`` of ``block`` as read-only typed
        views over the int64 columns."""
        doc_ids, freqs = self._ensure_columns()
        start = block * SKIP_BLOCK
        end = start + SKIP_BLOCK
        return (memoryview(doc_ids)[start:end].toreadonly(),
                memoryview(freqs)[start:end].toreadonly())

    def __iter__(self) -> Iterator[Posting]:
        return iter(self._postings)

    def __len__(self) -> int:
        return len(self._postings)

    def _append(self, posting: Posting) -> None:
        """Adopt a fully-built posting (deserialization path); keeps
        the incremental statistics in sync."""
        self._postings.append(posting)
        self._by_doc[posting.doc_id] = posting
        self._total_frequency += posting.frequency
        self._columns = None
        if posting.frequency > self._max_frequency:
            self._max_frequency = posting.frequency

    def to_json(self) -> list:
        return [posting.to_json() for posting in self._postings]

    @classmethod
    def from_json(cls, data: list) -> "PostingsList":
        postings = cls()
        for entry in data:
            postings._append(Posting.from_json(entry))
        return postings
