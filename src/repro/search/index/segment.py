"""Immutable on-disk index segments (``.ridx``, format version 3).

A *segment* is a write-once snapshot of an :class:`InvertedIndex`,
laid out so that opening one touches only a fixed-size header and
everything else — term dictionaries, postings, per-document lengths,
boosts and stored fields — is memory-mapped and decoded lazily on
first use:

* **open is O(header)** — the JSON header grows with the number of
  *fields*, not documents or terms, so opening a 10x larger segment
  costs the same;
* **per-term lazy postings** — the per-field term dictionary maps
  each term to the byte range of its postings, so a query decodes
  exactly the terms it touches (PR 4's lazy *per-field* decode taken
  one level further);
* **skip blocks** — postings are encoded in blocks of
  :data:`SKIP_BLOCK` documents with a per-block (first doc id, byte
  offset) skip pointer, so a point lookup (``explain``, conjunctive
  probing) decodes one block instead of the whole list;
* **page-cache friendly** — reads go through ``mmap``, so repeated
  opens of the same segment share the OS page cache and cold data is
  never copied into the process until touched.

File layout (little-endian)::

    magic   "RIDX"                      4 bytes
    version u8                          3 for segments (2 readable)
    hlen    u32                         header length in bytes
    header  JSON, utf-8                 hlen bytes
    blocks  term dicts / postings / lengths / boosts / stored

The header carries ``name``, ``doc_count``, ``field_names`` and a
per-field table of ``[offset, length]`` block locators (offsets
relative to the end of the header) plus the per-field summary
statistics global scoring needs without decoding anything:
``sum_lengths``, ``docs_with_field`` and ``max_boost``.

Block encodings (all integers LEB128 varints)::

    tdict    := term_count, term*
    term     := len(utf8), utf8, doc_freq, total_freq, max_freq,
                postings_off, postings_len,
                block_count, (first_doc_delta, off_delta, block_max)*
    postings := block*                 # SKIP_BLOCK docs per block
    block    := doc*                   # first doc absolute, rest
    doc      := doc_delta, freq, zigzag(position_delta)*
    lengths  := count, (doc_delta, length)*
    boosts   := count, (doc_delta, f64)*
    stored_index := (doc_count + 1) * u64    # blob offsets
    stored   := per-doc JSON blobs, utf-8

Version 3 added ``block_max`` — the largest within-document frequency
inside each skip block — to the per-block skip entries, so the top-k
driver can bound a whole block's best possible score from the term
dictionary alone and skip it without decoding a byte.  Version-2
segments (pair-shaped skip entries) still open fine; their block
maxima are recomputed from the decoded block on first touch.

Every encoder iterates its inputs in a canonical order (fields and
terms sorted, documents ascending), so sealing an index is fully
deterministic: merging segments A+B byte-for-byte equals sealing an
index built over the union corpus — the property the merge tests pin.
"""

from __future__ import annotations

import io
import json
import mmap
import os
import struct
import threading
from array import array
from bisect import bisect_right
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import IndexError_
from repro.search.index import kernels as _kernels
from repro.search.index.codec import (MAGIC, _read_uvarint,
                                      _write_uvarint, _zigzag,
                                      decode_uvarints)
from repro.search.index.inverted import InvertedIndex
from repro.search.index.postings import Posting, SKIP_BLOCK

__all__ = ["SEGMENT_VERSION", "SEGMENT_SUFFIX", "SKIP_BLOCK",
           "POSTINGS_CACHE_SIZE", "write_segment",
           "merge_segment_files", "SegmentReader", "LazyPostings",
           "DecodedTerm", "TermMeta"]

SEGMENT_VERSION = 3
#: versions this reader still opens; 2 lacks per-block max
#: frequencies, which are then recomputed on first block decode
READABLE_VERSIONS = (2, 3)
SEGMENT_SUFFIX = ".ridx"

# SKIP_BLOCK (documents per postings block) lives in
# repro.search.index.postings so the in-memory block API and the
# codec agree on the block size; re-exported here because each block
# restarts delta encoding and gets one skip pointer in this format.

#: decoded terms kept per :class:`SegmentReader` (the decode-once
#: LRU); a term is a few KB decoded, so the default bounds a reader
#: at single-digit MB while covering a realistic hot vocabulary
POSTINGS_CACHE_SIZE = 2048

PathLike = Union[str, Path]


def _segment_metrics():
    # deferred for the same reason as repro.search.searcher: the
    # observability module sits above this package in import order.
    from repro.core.observability import get_observability
    return get_observability().metrics


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TermMeta:
    """Term-dictionary entry: everything known about one term's
    postings without decoding them."""

    doc_frequency: int
    total_frequency: int
    max_frequency: int
    offset: int            # postings byte range, relative to the
    length: int            # field's postings block
    skip_docs: Tuple[int, ...]      # first doc id per block
    skip_offsets: Tuple[int, ...]   # block byte offset per block
    #: largest within-doc frequency per block (None for v2 segments,
    #: recomputed on first decode)
    block_maxima: Optional[Tuple[int, ...]] = None


def _encode_term_postings(docs: Sequence[Tuple[int, Sequence[int]]]
                          ) -> Tuple[bytes, List[int], List[int],
                                     List[int], int, int]:
    """Encode one term's ``(doc_id, positions)`` sequence.

    Returns ``(payload, skip_docs, skip_offsets, block_maxima,
    total_freq, max_freq)``.  Documents must arrive ascending (the
    index and the merge both guarantee it).
    """
    out = io.BytesIO()
    skip_docs: List[int] = []
    skip_offsets: List[int] = []
    block_maxima: List[int] = []
    total_frequency = 0
    max_frequency = 0
    previous_doc = 0
    for position_in_list, (doc_id, positions) in enumerate(docs):
        if position_in_list % SKIP_BLOCK == 0:
            skip_docs.append(doc_id)
            skip_offsets.append(out.tell())
            block_maxima.append(0)
            previous_doc = 0          # block restart: absolute doc id
        _write_uvarint(out, doc_id - previous_doc)
        previous_doc = doc_id
        _write_uvarint(out, len(positions))
        previous_position = 0
        for position in positions:
            _write_uvarint(out, _zigzag(position - previous_position))
            previous_position = position
        total_frequency += len(positions)
        if len(positions) > max_frequency:
            max_frequency = len(positions)
        if len(positions) > block_maxima[-1]:
            block_maxima[-1] = len(positions)
    return (out.getvalue(), skip_docs, skip_offsets, block_maxima,
            total_frequency, max_frequency)


def _encode_field(terms: Iterable[Tuple[str,
                                        Sequence[Tuple[int,
                                                       Sequence[int]]]]],
                  version: int = SEGMENT_VERSION
                  ) -> Tuple[bytes, bytes, int]:
    """Encode one field's sorted ``(term, docs)`` stream into a term
    dictionary block and a postings block.  Returns
    ``(tdict, postings, term_count)``.  ``version`` selects the skip
    entry shape: v3 triples carry the per-block max frequency, v2
    pairs (kept writable for the read-compatibility tests) do not."""
    tdict = io.BytesIO()
    postings = io.BytesIO()
    term_count = 0
    for term, docs in terms:
        (payload, skip_docs, skip_offsets, block_maxima,
         total_freq, max_freq) = _encode_term_postings(docs)
        raw = term.encode("utf-8")
        _write_uvarint(tdict, len(raw))
        tdict.write(raw)
        _write_uvarint(tdict, len(docs))
        _write_uvarint(tdict, total_freq)
        _write_uvarint(tdict, max_freq)
        _write_uvarint(tdict, postings.tell())
        _write_uvarint(tdict, len(payload))
        _write_uvarint(tdict, len(skip_docs))
        previous_doc = 0
        previous_offset = 0
        for doc_id, offset, block_max in zip(skip_docs, skip_offsets,
                                             block_maxima):
            _write_uvarint(tdict, doc_id - previous_doc)
            _write_uvarint(tdict, offset - previous_offset)
            if version >= 3:
                _write_uvarint(tdict, block_max)
            previous_doc, previous_offset = doc_id, offset
        postings.write(payload)
        term_count += 1
    body = tdict.getvalue()
    head = io.BytesIO()
    _write_uvarint(head, term_count)
    return head.getvalue() + body, postings.getvalue(), term_count


def _encode_lengths(lengths: Dict[int, int]) -> bytes:
    out = io.BytesIO()
    _write_uvarint(out, len(lengths))
    previous_doc = 0
    for doc_id in sorted(lengths):
        _write_uvarint(out, doc_id - previous_doc)
        previous_doc = doc_id
        _write_uvarint(out, lengths[doc_id])
    return out.getvalue()


def _encode_boosts(boosts: Dict[int, float]) -> bytes:
    out = io.BytesIO()
    _write_uvarint(out, len(boosts))
    previous_doc = 0
    for doc_id in sorted(boosts):
        _write_uvarint(out, doc_id - previous_doc)
        previous_doc = doc_id
        out.write(struct.pack("<d", boosts[doc_id]))
    return out.getvalue()


def _encode_stored(blobs: Iterable[bytes], doc_count: int
                   ) -> Tuple[bytes, bytes]:
    """Fixed-width offset table + concatenated JSON blobs, so stored
    fields of any document resolve in O(1)."""
    offsets = [0]
    body = io.BytesIO()
    for blob in blobs:
        body.write(blob)
        offsets.append(body.tell())
    if len(offsets) != doc_count + 1:
        raise IndexError_(
            f"stored blob count {len(offsets) - 1} != doc count "
            f"{doc_count}")
    index = struct.pack(f"<{len(offsets)}Q", *offsets)
    return index, body.getvalue()


class _BlockAssembler:
    """Accumulates named blocks and hands out header locators."""

    def __init__(self) -> None:
        self.blocks: List[bytes] = []
        self.offset = 0

    def add(self, block: bytes) -> List[int]:
        locator = [self.offset, len(block)]
        self.blocks.append(block)
        self.offset += len(block)
        return locator


def _write_file(path: Path, header: dict, assembler: _BlockAssembler,
                version: int = SEGMENT_VERSION) -> Path:
    """Write header + blocks atomically (temp file + rename) so a
    crash mid-seal never leaves a half-written ``.ridx`` under the
    final name."""
    raw_header = json.dumps(header, ensure_ascii=False).encode("utf-8")
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(MAGIC)
        handle.write(struct.pack("<B", version))
        handle.write(struct.pack("<I", len(raw_header)))
        handle.write(raw_header)
        for block in assembler.blocks:
            handle.write(block)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


# ----------------------------------------------------------------------
# sealing an in-memory index
# ----------------------------------------------------------------------

def write_segment(index: InvertedIndex, path: PathLike,
                  version: int = SEGMENT_VERSION) -> Path:
    """Seal ``index`` into an immutable segment file at ``path``.

    The index is not modified; the output is deterministic, so two
    sealings of equal indexes produce byte-identical files.
    ``version`` defaults to the current format; passing ``2`` writes
    the previous (no block-maxima) shape, which exists so the
    read-compatibility tests can fabricate genuine v2 files.
    """
    if version not in READABLE_VERSIONS:
        raise IndexError_(f"cannot write segment version {version} "
                          f"(writable: {READABLE_VERSIONS})")
    index._ensure_all_fields()
    path = Path(path)
    assembler = _BlockAssembler()
    field_table = []
    field_names = sorted(index._field_names
                         | set(index._terms) | set(index._lengths))
    indexed = sorted(set(index._terms) | set(index._lengths)
                     | set(index._boosts))
    for field_name in indexed:
        terms = index._terms.get(field_name, {})
        stream = ((term, [(posting.doc_id, posting.positions)
                          for posting in terms[term]])
                  for term in sorted(terms))
        tdict, postings, term_count = _encode_field(stream, version)
        lengths = index._lengths.get(field_name, {})
        boosts = index._boosts.get(field_name, {})
        field_table.append({
            "name": field_name,
            "terms": term_count,
            "tdict": assembler.add(tdict),
            "postings": assembler.add(postings),
            "lengths": assembler.add(_encode_lengths(lengths)),
            "boosts": assembler.add(_encode_boosts(boosts)),
            "sum_lengths": sum(lengths.values()),
            "docs_with_field": len(lengths),
            "max_boost": index.max_field_boost(field_name),
        })
    blobs = (json.dumps(doc, ensure_ascii=False).encode("utf-8")
             for doc in index._stored)
    stored_index, stored = _encode_stored(blobs, index.doc_count)
    header = {
        "name": index.name,
        "doc_count": index.doc_count,
        "field_names": field_names,
        "fields": field_table,
        "stored_index": assembler.add(stored_index),
        "stored": assembler.add(stored),
    }
    return _write_file(path, header, assembler, version)


# ----------------------------------------------------------------------
# reading
# ----------------------------------------------------------------------

class DecodedTerm:
    """One term's postings as typed int64 columns, decoded lazily one
    skip block at a time and shared per (reader, term).

    Segments are write-once, so every decode result is immutable for
    the reader's whole lifetime: :class:`SegmentReader` keeps these in
    a bounded LRU (:data:`POSTINGS_CACHE_SIZE`) and every query that
    touches the term shares the same arrays — the decode-once hot
    path.  Construction itself decodes nothing (it only captures the
    mmap and :class:`TermMeta`); each skip block's payload is decoded
    on first touch with the bulk varint pass
    (:func:`~repro.search.index.codec.decode_uvarints`) — or, when
    :mod:`repro.search.index.kernels` is enabled, a single compiled
    decode-and-split call — into ``array('q')`` doc-id and frequency
    columns.  A point lookup therefore decodes at most one block, a
    pruned scan decodes only the blocks whose max-impact bound
    survives θ, and a full materialization (:attr:`doc_ids`, merge,
    iteration) concatenates the per-block columns once.  Position
    lists stay in varint form until a positional reader (phrase
    scoring, iteration, merge) asks, and are then cached too.

    Derived views handed to callers (:meth:`block_columns`,
    :meth:`doc_ids_rebased`, :meth:`postings_rebased`,
    :meth:`positions`) are cached and **shared** — callers must treat
    them as read-only; :meth:`block_columns` enforces it by handing
    out read-only memoryviews.  Concurrent builders of the same block
    or derived view race benignly: both compute identical values and
    the last assignment wins.
    """

    __slots__ = ("_data", "_meta", "block_count",
                 "_block_docs", "_block_freqs", "_block_entries",
                 "_block_values", "_block_maxima",
                 "_all_doc_ids", "_all_freqs",
                 "_positions", "_doc_ids_by_base", "_postings_by_base")

    def __init__(self, data, meta: TermMeta) -> None:
        self._data = data          # the segment mmap (zero-copy)
        self._meta = meta
        self.block_count = len(meta.skip_offsets)
        count = self.block_count
        # per-block typed columns, decoded on first touch
        self._block_docs: List[Optional[array]] = [None] * count
        self._block_freqs: List[Optional[array]] = [None] * count
        self._block_entries: List[Optional[array]] = [None] * count
        # per-block flat varint stream (positions live here); the
        # compiled kernel skips producing it, so it may refill lazily
        self._block_values: List[Optional[list]] = [None] * count
        self._block_maxima: List[Optional[int]] = (
            list(meta.block_maxima) if meta.block_maxima is not None
            else [None] * count)
        self._all_doc_ids: Optional[array] = None
        self._all_freqs: Optional[array] = None
        self._positions: Optional[List[Optional[List[int]]]] = None
        self._doc_ids_by_base: Dict[int, Sequence[int]] = {}
        self._postings_by_base: Dict[int, List[Posting]] = {}

    @classmethod
    def decode(cls, data, meta: TermMeta) -> "DecodedTerm":
        """The shared decoded form of one term.  Despite the name no
        bytes are decoded here anymore — blocks materialize on first
        touch — but the classmethod stays as the construction point
        every caller (LRU, merge, parity tests) goes through."""
        return cls(data, meta)

    @property
    def doc_frequency(self) -> int:
        return self._meta.doc_frequency

    # -- block decode --------------------------------------------------

    def _block_span(self, block: int) -> Tuple[int, int, int]:
        """(byte start, byte end, doc count) of one skip block."""
        meta = self._meta
        start = meta.offset + meta.skip_offsets[block]
        end = (meta.offset + meta.skip_offsets[block + 1]
               if block + 1 < self.block_count
               else meta.offset + meta.length)
        ndocs = min(SKIP_BLOCK,
                    meta.doc_frequency - block * SKIP_BLOCK)
        return start, end, ndocs

    def _ensure_block(self, block: int) -> Tuple[array, array]:
        """Decode one skip block into typed columns (idempotent)."""
        docs = self._block_docs[block]
        if docs is not None:
            return docs, self._block_freqs[block]
        start, end, ndocs = self._block_span(block)
        split = _kernels.split_postings(self._data, start, end, ndocs)
        if split is not None:
            docs, freqs, entries, block_max = split
        else:
            values = decode_uvarints(self._data, start, end)
            docs = array("q", bytes(8 * ndocs))
            freqs = array("q", bytes(8 * ndocs))
            entries = array("q", bytes(8 * ndocs))
            position = 0
            doc_id = 0
            block_max = 0
            try:
                for i in range(ndocs):
                    doc_id += values[position]
                    frequency = values[position + 1]
                    docs[i] = doc_id
                    freqs[i] = frequency
                    entries[i] = position + 2
                    if frequency > block_max:
                        block_max = frequency
                    position += 2 + frequency
            except IndexError:
                raise IndexError_(
                    "postings payload does not match its byte range "
                    "(corrupt segment)") from None
            if position != len(values):
                raise IndexError_("postings payload does not match its "
                                  "byte range (corrupt segment)")
            self._block_values[block] = values
        # benign race: concurrent decoders produce identical columns
        self._block_freqs[block] = freqs
        self._block_entries[block] = entries
        self._block_docs[block] = docs
        if self._block_maxima[block] is None:
            self._block_maxima[block] = block_max
        return docs, freqs

    def _values_of(self, block: int) -> list:
        """The block's flat varint stream (positions path); refilled
        lazily when the compiled kernel produced the columns."""
        values = self._block_values[block]
        if values is None:
            start, end, _ = self._block_span(block)
            values = decode_uvarints(self._data, start, end)
            self._block_values[block] = values
        return values

    def block_max_frequency(self, block: int) -> int:
        """Largest within-document frequency in one skip block — from
        the v3 term dictionary when persisted (no decode), otherwise
        computed on the block's first decode and cached."""
        cached = self._block_maxima[block]
        if cached is None:
            self._ensure_block(block)
            cached = self._block_maxima[block]
        return cached

    def block_columns(self, block: int) -> Tuple[memoryview, memoryview]:
        """One block's ``(doc_ids, freqs)`` typed columns as read-only
        int64 memoryviews (segment-local doc ids, ascending)."""
        docs, freqs = self._ensure_block(block)
        return memoryview(docs).toreadonly(), \
            memoryview(freqs).toreadonly()

    # -- whole-term columns -------------------------------------------

    @property
    def doc_ids(self) -> array:
        """All segment-local doc ids as one ``array('q')``,
        materialized (and cached) on first use."""
        ids = self._all_doc_ids
        if ids is None:
            if self.block_count == 1:
                ids = self._ensure_block(0)[0]
            else:
                ids = array("q")
                for block in range(self.block_count):
                    ids.extend(self._ensure_block(block)[0])
            self._all_doc_ids = ids
        return ids

    @property
    def freqs(self) -> array:
        """All within-document frequencies as one ``array('q')``."""
        freqs = self._all_freqs
        if freqs is None:
            if self.block_count == 1:
                freqs = self._ensure_block(0)[1]
            else:
                freqs = array("q")
                for block in range(self.block_count):
                    freqs.extend(self._ensure_block(block)[1])
            self._all_freqs = freqs
        return freqs

    # -- lookups -------------------------------------------------------

    def find(self, local_doc: int) -> Optional[Tuple[int, int]]:
        """``(block, offset)`` of ``local_doc``, or ``None``.  Two
        binary searches — skip table, then one ≤ SKIP_BLOCK column —
        so a point lookup decodes at most one block."""
        block = bisect_right(self._meta.skip_docs, local_doc) - 1
        if block < 0:
            return None
        docs, _ = self._ensure_block(block)
        offset = bisect_right(docs, local_doc) - 1
        if offset >= 0 and docs[offset] == local_doc:
            return block, offset
        return None

    def frequency_of(self, local_doc: int) -> Optional[int]:
        """Within-document frequency of ``local_doc`` (the scoring
        fast path: :meth:`find` inlined flat, so a probe costs two
        bisects and no extra call frames)."""
        block = bisect_right(self._meta.skip_docs, local_doc) - 1
        if block < 0:
            return None
        docs = self._block_docs[block]
        if docs is None:
            docs, _ = self._ensure_block(block)
        offset = bisect_right(docs, local_doc) - 1
        if offset >= 0 and docs[offset] == local_doc:
            return self._block_freqs[block][offset]
        return None

    def index_of(self, local_doc: int) -> Optional[int]:
        """Ordinal of ``local_doc`` across all blocks, or ``None``."""
        found = self.find(local_doc)
        if found is None:
            return None
        block, offset = found
        return block * SKIP_BLOCK + offset

    def positions(self, ordinal: int) -> List[int]:
        """Position list of the ``ordinal``-th document, decoded on
        first use and cached (shared — read-only)."""
        cache = self._positions
        if cache is None:
            cache = [None] * self._meta.doc_frequency
            self._positions = cache
        decoded = cache[ordinal]
        if decoded is None:
            block, offset = divmod(ordinal, SKIP_BLOCK)
            self._ensure_block(block)
            values = self._values_of(block)
            start = self._block_entries[block][offset]
            decoded = []
            position = 0
            for delta in values[start:start
                                + self._block_freqs[block][offset]]:
                position += (delta >> 1) ^ -(delta & 1)   # unzigzag
                decoded.append(position)
            cache[ordinal] = decoded
        return decoded

    def doc_ids_rebased(self, base: int) -> Sequence[int]:
        """All doc ids shifted into global space (shared, read-only).
        A reader's base is fixed within one segment set, so this is
        computed once per (decoded term, generation)."""
        ids = self._doc_ids_by_base.get(base)
        if ids is None:
            ids = (self.doc_ids if base == 0
                   else array("q", (doc + base for doc in self.doc_ids)))
            self._doc_ids_by_base[base] = ids
        return ids

    def postings_rebased(self, base: int) -> List[Posting]:
        """Materialized :class:`Posting` objects (shared, read-only)
        for the positional/iteration path."""
        postings = self._postings_by_base.get(base)
        if postings is None:
            postings = [Posting(doc + base, self.positions(ordinal))
                        for ordinal, doc in enumerate(self.doc_ids)]
            self._postings_by_base[base] = postings
        return postings


class LazyPostings:
    """Postings of one term: a per-query shell over the reader's
    shared :class:`DecodedTerm`.

    Duck-compatible with
    :class:`~repro.search.index.postings.PostingsList` where scoring
    needs it.  Two statistics intentionally differ in scope:

    * :attr:`doc_frequency` is the **global** document frequency the
      caller supplied (scoring must use corpus-wide IDF to stay
      bit-identical to the monolithic index), while
    * :attr:`max_frequency`, :attr:`total_frequency` and ``len()``
      are **segment-local** (the local max-impact bound is tighter,
      and still sound, for pruning this segment).

    ``base`` shifts decoded doc ids into the global doc-id space.
    The shell itself holds no decode state — everything decoded lives
    on the shared :class:`DecodedTerm`, so constructing one per query
    is allocation-cheap and the decode happens once per reader.
    """

    __slots__ = ("_decoded", "_meta", "_base", "_doc_frequency")

    def __init__(self, decoded: DecodedTerm, meta: TermMeta,
                 base: int = 0,
                 doc_frequency: Optional[int] = None) -> None:
        self._decoded = decoded
        self._meta = meta
        self._base = base
        self._doc_frequency = (meta.doc_frequency
                               if doc_frequency is None
                               else doc_frequency)

    # -- statistics ----------------------------------------------------

    @property
    def doc_frequency(self) -> int:
        return self._doc_frequency

    @property
    def total_frequency(self) -> int:
        return self._meta.total_frequency

    @property
    def max_frequency(self) -> int:
        return self._meta.max_frequency

    def __len__(self) -> int:
        return self._meta.doc_frequency

    # -- PostingsList API ---------------------------------------------

    def frequency(self, doc_id: int) -> Optional[int]:
        """Within-document frequency without materializing a
        :class:`Posting` (the term-scoring fast path — position lists
        are never touched, and at most one block is decoded)."""
        return self._decoded.frequency_of(doc_id - self._base)

    def get(self, doc_id: int) -> Optional[Posting]:
        ordinal = self._decoded.index_of(doc_id - self._base)
        if ordinal is None:
            return None
        return Posting(doc_id, self._decoded.positions(ordinal))

    def doc_ids(self) -> Sequence[int]:
        """Matching global doc ids, ascending (shared — read-only)."""
        return self._decoded.doc_ids_rebased(self._base)

    def freqs(self) -> Sequence[int]:
        """Within-document frequencies aligned with :meth:`doc_ids`
        (the shared typed column — read-only; frequencies need no
        rebasing)."""
        return self._decoded.freqs

    def __iter__(self):
        return iter(self._decoded.postings_rebased(self._base))

    # -- block API (batched scoring / block-max pruning) --------------

    @property
    def base(self) -> int:
        """Offset added to segment-local doc ids (scatter-gather)."""
        return self._base

    def block_count(self) -> int:
        return self._decoded.block_count

    def block_max_frequency(self, block: int) -> int:
        """Per-block max-impact figure — straight from the v3 term
        dictionary when persisted, so a block can be rejected against
        θ without decoding it."""
        return self._decoded.block_max_frequency(block)

    def block_columns(self, block: int) -> Tuple[memoryview, memoryview]:
        """One block's ``(doc_ids, freqs)`` int64 columns (read-only,
        segment-local ids — add :attr:`base` to globalize)."""
        return self._decoded.block_columns(block)


class SegmentReader:
    """Memory-mapped random access into one sealed segment.

    Opening parses the magic, version and JSON header only — O(fields)
    work however many documents the segment holds.  Term dictionaries,
    postings, lengths, boosts and stored documents decode lazily on
    first touch and stay cached on the reader.
    """

    def __init__(self, path: PathLike,
                 postings_cache_size: int = POSTINGS_CACHE_SIZE) -> None:
        self.path = Path(path)
        self._file = open(self.path, "rb")
        try:
            self._mmap = mmap.mmap(self._file.fileno(), 0,
                                   access=mmap.ACCESS_READ)
        except ValueError:           # pragma: no cover - 0-byte file
            self._file.close()
            raise IndexError_(f"{self.path} is empty, not a segment")
        data = self._mmap
        if data[:4] != MAGIC:
            self.close()
            raise IndexError_(f"{self.path} is not a segment "
                              f"(bad magic {bytes(data[:4])!r})")
        version = data[4]
        if version not in READABLE_VERSIONS:
            self.close()
            raise IndexError_(
                f"unsupported segment version {version} in "
                f"{self.path} (supported: "
                f"{', '.join(map(str, READABLE_VERSIONS))})")
        self.version = version
        (header_length,) = struct.unpack_from("<I", data, 5)
        self._blocks_start = 9 + header_length
        header = json.loads(data[9:self._blocks_start].decode("utf-8"))
        self.name: str = header["name"]
        self.doc_count: int = header["doc_count"]
        self._field_names: List[str] = header["field_names"]
        self._fields: Dict[str, dict] = {entry["name"]: entry
                                         for entry in header["fields"]}
        self._stored_index = header["stored_index"]
        self._stored = header["stored"]
        # lazy caches
        self._term_metas: Dict[str, Dict[str, TermMeta]] = {}
        self._lengths: Dict[str, Dict[int, int]] = {}
        self._boosts: Dict[str, Dict[int, float]] = {}
        self._stored_cache: Dict[int, dict] = {}
        # decode-once postings LRU: (field, term) -> DecodedTerm
        self._postings_cache: "OrderedDict[Tuple[str, str], DecodedTerm]" \
            = OrderedDict()
        self._postings_capacity = max(1, postings_cache_size)
        self._postings_lock = threading.Lock()
        self._postings_hits = 0
        self._postings_misses = 0
        self._postings_evictions = 0
        metrics = _segment_metrics()
        if metrics.enabled:
            metrics.counter("segment_opens_total",
                            "segment files opened").inc()
            # hot path: resolve the instruments once, not per lookup
            self._metric_hits = metrics.counter(
                "postings_cache_hits_total",
                "decoded-postings cache hits across all segment readers")
            self._metric_misses = metrics.counter(
                "postings_cache_misses_total",
                "decoded-postings cache misses (terms decoded)")
            self._metric_evictions = metrics.counter(
                "postings_cache_evictions_total",
                "decoded-postings cache LRU evictions")
        else:
            self._metric_hits = None
            self._metric_misses = None
            self._metric_evictions = None

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        with self._postings_lock:
            self._postings_cache.clear()
        try:
            self._mmap.close()
        except Exception:            # pragma: no cover - already closed
            pass
        self._file.close()

    def __enter__(self) -> "SegmentReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def size_bytes(self) -> int:
        return len(self._mmap)

    # -- header-level reads -------------------------------------------

    def field_names(self) -> List[str]:
        return list(self._field_names)

    def indexed_fields(self) -> List[str]:
        return sorted(self._fields)

    def field_entry(self, field_name: str) -> Optional[dict]:
        return self._fields.get(field_name)

    def sum_lengths(self, field_name: str) -> int:
        entry = self._fields.get(field_name)
        return entry["sum_lengths"] if entry else 0

    def docs_with_field(self, field_name: str) -> int:
        entry = self._fields.get(field_name)
        return entry["docs_with_field"] if entry else 0

    def max_field_boost(self, field_name: str) -> float:
        entry = self._fields.get(field_name)
        return entry["max_boost"] if entry else 1.0

    # -- term dictionary ----------------------------------------------

    def term_metas(self, field_name: str) -> Dict[str, TermMeta]:
        """The field's full term dictionary (term → :class:`TermMeta`),
        decoded once and cached.  Iteration order is sorted — the
        on-disk order."""
        metas = self._term_metas.get(field_name)
        if metas is not None:
            return metas
        metas = {}
        entry = self._fields.get(field_name)
        if entry is not None:
            data = self._mmap
            has_block_maxima = self.version >= 3
            pos = self._blocks_start + entry["tdict"][0]
            term_count, pos = _read_uvarint(data, pos)
            for _ in range(term_count):
                length, pos = _read_uvarint(data, pos)
                term = bytes(data[pos:pos + length]).decode("utf-8")
                pos += length
                doc_freq, pos = _read_uvarint(data, pos)
                total_freq, pos = _read_uvarint(data, pos)
                max_freq, pos = _read_uvarint(data, pos)
                offset, pos = _read_uvarint(data, pos)
                payload_len, pos = _read_uvarint(data, pos)
                block_count, pos = _read_uvarint(data, pos)
                skip_docs: List[int] = []
                skip_offsets: List[int] = []
                block_maxima: List[int] = []
                doc_id = 0
                block_offset = 0
                for _ in range(block_count):
                    doc_delta, pos = _read_uvarint(data, pos)
                    off_delta, pos = _read_uvarint(data, pos)
                    doc_id += doc_delta
                    block_offset += off_delta
                    skip_docs.append(doc_id)
                    skip_offsets.append(block_offset)
                    if has_block_maxima:
                        block_max, pos = _read_uvarint(data, pos)
                        block_maxima.append(block_max)
                metas[term] = TermMeta(
                    doc_frequency=doc_freq,
                    total_frequency=total_freq,
                    max_frequency=max_freq,
                    offset=(self._blocks_start + entry["postings"][0]
                            + offset),
                    length=payload_len,
                    skip_docs=tuple(skip_docs),
                    skip_offsets=tuple(skip_offsets),
                    block_maxima=(tuple(block_maxima)
                                  if has_block_maxima else None))
        self._term_metas[field_name] = metas
        return metas

    def term_meta(self, field_name: str, term: str) -> Optional[TermMeta]:
        return self.term_metas(field_name).get(term)

    def decoded_term(self, field_name: str, term: str
                     ) -> Optional[Tuple[TermMeta, DecodedTerm]]:
        """The shared decoded form of ``(field, term)`` through the
        bounded LRU, or ``None`` when the term is absent.

        The decode itself runs outside the cache lock, so two threads
        missing the same cold term may both decode it; the loser
        adopts the winner's copy, keeping exactly one shared
        :class:`DecodedTerm` per key.
        """
        meta = self.term_meta(field_name, term)
        if meta is None:
            return None
        key = (field_name, term)
        cache = self._postings_cache
        with self._postings_lock:
            decoded = cache.get(key)
            if decoded is not None:
                cache.move_to_end(key)
                self._postings_hits += 1
        if decoded is not None:
            if self._metric_hits is not None:
                self._metric_hits.inc()
            return meta, decoded
        decoded = DecodedTerm.decode(self._mmap, meta)
        evicted = 0
        with self._postings_lock:
            self._postings_misses += 1
            racer = cache.get(key)
            if racer is not None:
                cache.move_to_end(key)
                decoded = racer
            else:
                cache[key] = decoded
                while len(cache) > self._postings_capacity:
                    cache.popitem(last=False)
                    evicted += 1
                self._postings_evictions += evicted
        if self._metric_misses is not None:
            self._metric_misses.inc()
            if evicted:
                self._metric_evictions.inc(evicted)
        return meta, decoded

    def postings_cache_info(self):
        """Exact ``(hits, misses, maxsize, currsize)`` of the
        decode-once LRU (same shape as the query-cache info)."""
        from repro.search.index.writer import CacheInfo
        with self._postings_lock:
            return CacheInfo(self._postings_hits, self._postings_misses,
                             self._postings_capacity,
                             len(self._postings_cache))

    def postings(self, field_name: str, term: str, base: int = 0,
                 doc_frequency: Optional[int] = None
                 ) -> Optional[LazyPostings]:
        """Lazy postings for ``(field, term)``, or ``None`` when the
        term is absent.  ``base`` rebases doc ids (scatter-gather);
        ``doc_frequency`` overrides the reported df with the global
        one (scoring parity).  The decoded arrays come from the
        reader's decode-once LRU; only the cheap shell is per-call."""
        found = self.decoded_term(field_name, term)
        if found is None:
            return None
        meta, decoded = found
        return LazyPostings(decoded, meta, base=base,
                            doc_frequency=doc_frequency)

    # -- per-document attributes --------------------------------------

    def lengths(self, field_name: str) -> Dict[int, int]:
        lengths = self._lengths.get(field_name)
        if lengths is not None:
            return lengths
        lengths = {}
        entry = self._fields.get(field_name)
        if entry is not None:
            # the lengths block is a pure varint stream — bulk decode
            start = self._blocks_start + entry["lengths"][0]
            values = decode_uvarints(self._mmap, start,
                                     start + entry["lengths"][1])
            doc_id = 0
            for position in range(1, 2 * values[0], 2):
                doc_id += values[position]
                lengths[doc_id] = values[position + 1]
        self._lengths[field_name] = lengths
        return lengths

    def boosts(self, field_name: str) -> Dict[int, float]:
        boosts = self._boosts.get(field_name)
        if boosts is not None:
            return boosts
        boosts = {}
        entry = self._fields.get(field_name)
        if entry is not None:
            data = self._mmap
            pos = self._blocks_start + entry["boosts"][0]
            count, pos = _read_uvarint(data, pos)
            doc_id = 0
            for _ in range(count):
                delta, pos = _read_uvarint(data, pos)
                doc_id += delta
                (value,) = struct.unpack_from("<d", data, pos)
                pos += 8
                boosts[doc_id] = value
        self._boosts[field_name] = boosts
        return boosts

    def field_length(self, field_name: str, doc_id: int) -> int:
        return self.lengths(field_name).get(doc_id, 0)

    def field_boost(self, field_name: str, doc_id: int) -> float:
        return self.boosts(field_name).get(doc_id, 1.0)

    # -- stored fields ------------------------------------------------

    def stored_fields(self, doc_id: int) -> Dict[str, List[str]]:
        """The stored-field dict of one document, JSON-decoded once
        per reader lifetime and shared after that (the segment is
        immutable, so callers must treat the dict as read-only; use
        :meth:`_decode_stored` for a private copy)."""
        cached = self._stored_cache.get(doc_id)
        if cached is None:
            cached = self._decode_stored(doc_id)
            self._stored_cache[doc_id] = cached
        return cached

    def _decode_stored(self, doc_id: int) -> Dict[str, List[str]]:
        """Decode one document's stored fields fresh (O(1) via the
        fixed-width offset table)."""
        if not 0 <= doc_id < self.doc_count:
            raise IndexError_(f"unknown doc_id {doc_id}")
        table = self._blocks_start + self._stored_index[0]
        start, end = struct.unpack_from("<2Q", self._mmap,
                                        table + 8 * doc_id)
        base = self._blocks_start + self._stored[0]
        blob = bytes(self._mmap[base + start:base + end])
        return json.loads(blob.decode("utf-8"))

    # -- materialization (tests, stats, JSON export) ------------------

    def to_inverted(self) -> InvertedIndex:
        """Fully decode into a mutable :class:`InvertedIndex` (a
        debugging/parity aid — serving never needs it)."""
        index = InvertedIndex(name=self.name)
        # private copies: the mutable index must not alias the
        # reader's shared stored-field cache
        index._stored = [self._decode_stored(doc_id)
                         for doc_id in range(self.doc_count)]
        index._field_names = set(self._field_names)
        for field_name in self.indexed_fields():
            terms = {}
            for term, meta in self.term_metas(field_name).items():
                # full-vocabulary walk: decode directly instead of
                # thrashing the bounded serving LRU
                postings = LazyPostings(
                    DecodedTerm.decode(self._mmap, meta), meta)
                target = terms.setdefault(term, None)
                del target
                from repro.search.index.postings import PostingsList
                plist = PostingsList()
                for posting in postings:
                    plist._append(Posting(posting.doc_id,
                                          list(posting.positions)))
                terms[term] = plist
            index._terms[field_name] = terms
            index._lengths[field_name] = dict(self.lengths(field_name))
            boosts = self.boosts(field_name)
            if boosts:
                index._boosts[field_name] = dict(boosts)
                for boost in boosts.values():
                    index._note_boost(field_name, boost)
        index._generation = 0
        return index

    def __repr__(self) -> str:     # pragma: no cover - debugging aid
        return (f"<SegmentReader {self.path.name}: {self.doc_count} "
                f"docs, {len(self._fields)} fields>")


# ----------------------------------------------------------------------
# streaming merge
# ----------------------------------------------------------------------

def merge_segment_files(readers: Sequence[SegmentReader],
                        path: PathLike) -> Path:
    """Merge ``readers`` (in order) into one segment at ``path``.

    This is a *streaming postings merge*: per term, only that term's
    postings from each input are decoded, re-based and re-encoded —
    memory stays proportional to a single term, never the whole
    index.  Stored-field blobs are copied byte-for-byte.  Because the
    encoders are deterministic, the output is byte-identical to
    sealing an index built over the concatenated corpus directly.
    """
    if not readers:
        raise IndexError_("cannot merge zero segments")
    path = Path(path)
    bases = []
    base = 0
    for reader in readers:
        bases.append(base)
        base += reader.doc_count
    doc_count = base

    assembler = _BlockAssembler()
    field_names = sorted({name for reader in readers
                          for name in reader.field_names()})
    indexed = sorted({name for reader in readers
                      for name in reader.indexed_fields()})
    field_table = []
    for field_name in indexed:
        per_reader = [(reader, reader_base,
                       reader.term_metas(field_name))
                      for reader, reader_base in zip(readers, bases)]

        def merged_terms():
            all_terms = sorted({term for _, _, metas in per_reader
                                for term in metas})
            for term in all_terms:
                docs: List[Tuple[int, Sequence[int]]] = []
                for reader, reader_base, metas in per_reader:
                    meta = metas.get(term)
                    if meta is None:
                        continue
                    # merge walks the whole vocabulary once — decode
                    # directly, bypassing the bounded serving LRU
                    decoded = DecodedTerm.decode(reader._mmap, meta)
                    docs.extend(
                        (doc_id + reader_base,
                         decoded.positions(ordinal))
                        for ordinal, doc_id
                        in enumerate(decoded.doc_ids))
                yield term, docs

        tdict, postings, term_count = _encode_field(merged_terms())
        lengths: Dict[int, int] = {}
        boosts: Dict[int, float] = {}
        for reader, reader_base in zip(readers, bases):
            for doc_id, value in reader.lengths(field_name).items():
                lengths[doc_id + reader_base] = value
            for doc_id, value in reader.boosts(field_name).items():
                boosts[doc_id + reader_base] = value
        field_table.append({
            "name": field_name,
            "terms": term_count,
            "tdict": assembler.add(tdict),
            "postings": assembler.add(postings),
            "lengths": assembler.add(_encode_lengths(lengths)),
            "boosts": assembler.add(_encode_boosts(boosts)),
            "sum_lengths": sum(reader.sum_lengths(field_name)
                               for reader in readers),
            "docs_with_field": sum(reader.docs_with_field(field_name)
                                   for reader in readers),
            "max_boost": max(reader.max_field_boost(field_name)
                             for reader in readers),
        })

    def stored_blobs():
        for reader in readers:
            table = reader._blocks_start + reader._stored_index[0]
            body = reader._blocks_start + reader._stored[0]
            for doc_id in range(reader.doc_count):
                start, end = struct.unpack_from(
                    "<2Q", reader._mmap, table + 8 * doc_id)
                yield bytes(reader._mmap[body + start:body + end])

    stored_index, stored = _encode_stored(stored_blobs(), doc_count)
    header = {
        "name": readers[0].name,
        "doc_count": doc_count,
        "field_names": field_names,
        "fields": field_table,
        "stored_index": assembler.add(stored_index),
        "stored": assembler.add(stored),
    }
    return _write_file(path, header, assembler)
