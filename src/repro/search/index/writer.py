"""IndexWriter: analyzes documents into an inverted index."""

from __future__ import annotations

from collections import OrderedDict, namedtuple
from typing import Dict, List, Optional, Tuple

from repro.search.analysis.analyzer import Analyzer, StandardAnalyzer
from repro.search.analysis.tokenizer import Token
from repro.search.document import Document
from repro.search.index.inverted import InvertedIndex

__all__ = ["PerFieldAnalyzer", "IndexWriter", "CacheInfo"]

#: Mirrors :func:`functools.lru_cache`'s info tuple so stemmer and
#: analyzer caches report through one shape.
CacheInfo = namedtuple("CacheInfo", ["hits", "misses", "maxsize",
                                     "currsize"])

#: Default capacity of the token-stream cache.  Field values repeat
#: heavily (event types, team names, player names), so the hot set is
#: small relative to corpus size.
TOKEN_CACHE_SIZE = 32768


class PerFieldAnalyzer:
    """Routes each field to its own analyzer, with a default fallback.

    The semantic index needs this: narration text is stemmed, while
    event/player fields keep exact (lowercased) tokens so ontology
    terms are not distorted.

    :meth:`analyze` additionally memoizes token streams keyed by
    ``(field, text)`` — the indexing hot path re-analyzes the same
    event labels and names for every document that carries them.
    """

    def __init__(self, default: Optional[Analyzer] = None,
                 per_field: Optional[Dict[str, Analyzer]] = None,
                 cache_size: int = TOKEN_CACHE_SIZE) -> None:
        self.default = default or StandardAnalyzer()
        self.per_field = dict(per_field or {})
        self._cache: "OrderedDict[Tuple[str, str], List[Token]]" = \
            OrderedDict()
        self._cache_size = cache_size
        self._hits = 0
        self._misses = 0

    def for_field(self, field_name: str) -> Analyzer:
        return self.per_field.get(field_name, self.default)

    def analyze(self, field_name: str, text: str) -> List[Token]:
        """Analyze ``text`` for ``field_name`` through the LRU cache.

        The returned list is shared between callers and must not be
        mutated.
        """
        if self._cache_size <= 0:
            return self.for_field(field_name).analyze(text)
        key = (field_name, text)
        tokens = self._cache.get(key)
        if tokens is not None:
            self._hits += 1
            self._cache.move_to_end(key)
            return tokens
        self._misses += 1
        tokens = self.for_field(field_name).analyze(text)
        self._cache[key] = tokens
        if len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)
        return tokens

    def cache_info(self) -> CacheInfo:
        """hits/misses/maxsize/currsize of the token-stream cache."""
        return CacheInfo(self._hits, self._misses, self._cache_size,
                         len(self._cache))

    def cache_clear(self) -> None:
        self._cache.clear()
        self._hits = 0
        self._misses = 0


class IndexWriter:
    """Adds documents to an :class:`InvertedIndex`."""

    def __init__(self, index: InvertedIndex,
                 analyzer: PerFieldAnalyzer | Analyzer | None = None) -> None:
        self.index = index
        if analyzer is None:
            analyzer = PerFieldAnalyzer()
        elif isinstance(analyzer, Analyzer):
            analyzer = PerFieldAnalyzer(default=analyzer)
        self.analyzer = analyzer

    def add_document(self, document: Document) -> int:
        """Index one document; returns its internal doc id."""
        doc_id = self.index.new_doc_id()
        for field_ in document:
            if field_.indexed and field_.value:
                tokens = self.analyzer.analyze(field_.name, field_.value)
                self.index.index_terms(
                    doc_id, field_.name,
                    [(token.text, token.position) for token in tokens],
                    boost=field_.boost)
            if field_.stored:
                self.index.store_value(doc_id, field_.name, field_.value)
        return doc_id

    def add_documents(self, documents) -> int:
        """Index many documents; returns the number added."""
        count = 0
        for document in documents:
            self.add_document(document)
            count += 1
        return count
