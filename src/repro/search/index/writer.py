"""IndexWriter: analyzes documents into an inverted index."""

from __future__ import annotations

from typing import Dict, Optional

from repro.search.analysis.analyzer import Analyzer, StandardAnalyzer
from repro.search.document import Document
from repro.search.index.inverted import InvertedIndex

__all__ = ["PerFieldAnalyzer", "IndexWriter"]


class PerFieldAnalyzer:
    """Routes each field to its own analyzer, with a default fallback.

    The semantic index needs this: narration text is stemmed, while
    event/player fields keep exact (lowercased) tokens so ontology
    terms are not distorted.
    """

    def __init__(self, default: Optional[Analyzer] = None,
                 per_field: Optional[Dict[str, Analyzer]] = None) -> None:
        self.default = default or StandardAnalyzer()
        self.per_field = dict(per_field or {})

    def for_field(self, field_name: str) -> Analyzer:
        return self.per_field.get(field_name, self.default)


class IndexWriter:
    """Adds documents to an :class:`InvertedIndex`."""

    def __init__(self, index: InvertedIndex,
                 analyzer: PerFieldAnalyzer | Analyzer | None = None) -> None:
        self.index = index
        if analyzer is None:
            analyzer = PerFieldAnalyzer()
        elif isinstance(analyzer, Analyzer):
            analyzer = PerFieldAnalyzer(default=analyzer)
        self.analyzer = analyzer

    def add_document(self, document: Document) -> int:
        """Index one document; returns its internal doc id."""
        doc_id = self.index.new_doc_id()
        for field_ in document:
            if field_.indexed and field_.value:
                tokens = self.analyzer.for_field(field_.name).analyze(
                    field_.value)
                self.index.index_terms(
                    doc_id, field_.name,
                    [(token.text, token.position) for token in tokens],
                    boost=field_.boost)
            if field_.stored:
                self.index.store_value(doc_id, field_.name, field_.value)
        return doc_id

    def add_documents(self, documents) -> int:
        """Index many documents; returns the number added."""
        count = 0
        for document in documents:
            self.add_document(document)
            count += 1
        return count
