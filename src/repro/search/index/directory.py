"""Index persistence: save/load an inverted index as JSON.

A directory holds one ``<name>.json`` file per index.  JSON keeps the
on-disk format debuggable; the indexes in this system are small enough
(hundreds to tens of thousands of events) that compactness is not a
concern.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Union

from repro.errors import IndexError_
from repro.search.index.inverted import InvertedIndex

__all__ = ["save_index", "load_index", "list_indexes"]

PathLike = Union[str, Path]


def save_index(index: InvertedIndex, directory: PathLike) -> Path:
    """Write ``index`` to ``directory/<index.name>.json``."""
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    path = target / f"{index.name}.json"
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(index.to_json(), handle, ensure_ascii=False)
    return path


def load_index(directory: PathLike, name: str) -> InvertedIndex:
    """Load the index called ``name`` from ``directory``."""
    path = Path(directory) / f"{name}.json"
    if not path.exists():
        raise IndexError_(f"no index {name!r} in {directory}")
    with open(path, encoding="utf-8") as handle:
        return InvertedIndex.from_json(json.load(handle))


def list_indexes(directory: PathLike) -> List[str]:
    """Names of all indexes stored in ``directory``."""
    target = Path(directory)
    if not target.exists():
        return []
    return sorted(path.stem for path in target.glob("*.json"))
