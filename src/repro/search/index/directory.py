"""Index persistence: save/load an inverted index as JSON or binary.

A directory holds one file per index: ``<name>.json`` (the legacy,
debuggable format) or ``<name>.ridx`` (the compact binary format, see
:mod:`repro.search.index.codec`).  :func:`load_index` auto-detects
which one is present — callers never name a format when reading.
When both exist the binary file wins (it is the optimized serving
format; the JSON twin is typically a debugging export of the same
index).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Union

from repro.errors import IndexError_
from repro.search.index import codec
from repro.search.index.inverted import InvertedIndex

__all__ = ["save_index", "load_index", "list_indexes", "index_path",
           "INDEX_FORMATS"]

PathLike = Union[str, Path]

#: accepted values for ``save_index(..., format=...)``
INDEX_FORMATS = ("json", "binary")


def index_path(directory: PathLike, name: str,
               format: str = "json") -> Path:
    """The file an index of ``name`` would occupy in ``directory``."""
    suffix = codec.BINARY_SUFFIX if format == "binary" else ".json"
    return Path(directory) / f"{name}{suffix}"


def save_index(index: InvertedIndex, directory: PathLike,
               format: str = "json") -> Path:
    """Write ``index`` to ``directory/<index.name>.json`` (default) or
    ``directory/<index.name>.ridx`` when ``format="binary"``."""
    if format not in INDEX_FORMATS:
        raise IndexError_(
            f"unknown index format {format!r} "
            f"(expected one of {', '.join(INDEX_FORMATS)})")
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    path = index_path(target, index.name, format)
    if format == "binary":
        return codec.write_index(index, path)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(index.to_json(), handle, ensure_ascii=False)
    return path


def load_index(directory: PathLike, name: str) -> InvertedIndex:
    """Load the index called ``name`` from ``directory``, whatever
    format it was saved in.  Binary indexes load lazily: postings
    decode per field on first access."""
    binary_path = index_path(directory, name, "binary")
    if binary_path.exists():
        return codec.read_index(binary_path)
    json_path = index_path(directory, name, "json")
    if not json_path.exists():
        raise IndexError_(f"no index {name!r} in {directory}")
    with open(json_path, encoding="utf-8") as handle:
        return InvertedIndex.from_json(json.load(handle))


def list_indexes(directory: PathLike) -> List[str]:
    """Names of all indexes stored in ``directory`` (either format)."""
    target = Path(directory)
    if not target.exists():
        return []
    names = {path.stem for path in target.glob("*.json")}
    names |= {path.stem
              for path in target.glob(f"*{codec.BINARY_SUFFIX}")}
    return sorted(names)
