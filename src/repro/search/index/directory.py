"""Index persistence: save/load an inverted index as JSON or binary.

A directory holds one entry per index: ``<name>.json`` (the legacy,
debuggable format), ``<name>.ridx`` (the compact binary format, see
:mod:`repro.search.index.codec`), or a ``<name>.segd/`` segment
directory (immutable mmap'd segments plus a manifest, see
:mod:`repro.search.index.segments`).  :func:`load_index` auto-detects
which one is present — callers never name a format when reading.
Precedence when several exist: segmented > binary > JSON (newest
serving format wins; the others are typically debugging exports or
leftovers of the same index).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Union

from repro.errors import IndexError_
from repro.search.index import codec
from repro.search.index.inverted import InvertedIndex
from repro.search.index.segments import (SEGMENT_DIR_SUFFIX,
                                         IndexDirectory, SegmentedIndex)

__all__ = ["save_index", "load_index", "list_indexes", "index_path",
           "segment_dir_path", "INDEX_FORMATS"]

PathLike = Union[str, Path]

#: accepted values for ``save_index(..., format=...)``
INDEX_FORMATS = ("json", "binary")


def index_path(directory: PathLike, name: str,
               format: str = "json") -> Path:
    """The file an index of ``name`` would occupy in ``directory``."""
    suffix = codec.BINARY_SUFFIX if format == "binary" else ".json"
    return Path(directory) / f"{name}{suffix}"


def save_index(index: InvertedIndex, directory: PathLike,
               format: str = "json") -> Path:
    """Write ``index`` to ``directory/<index.name>.json`` (default) or
    ``directory/<index.name>.ridx`` when ``format="binary"``."""
    if format not in INDEX_FORMATS:
        raise IndexError_(
            f"unknown index format {format!r} "
            f"(expected one of {', '.join(INDEX_FORMATS)})")
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    path = index_path(target, index.name, format)
    if format == "binary":
        return codec.write_index(index, path)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(index.to_json(), handle, ensure_ascii=False)
    return path


def segment_dir_path(directory: PathLike, name: str) -> Path:
    """The segment directory an index of ``name`` would occupy."""
    return Path(directory) / f"{name}{SEGMENT_DIR_SUFFIX}"


def load_index(directory: PathLike, name: str):
    """Load the index called ``name`` from ``directory``, whatever
    format it was saved in.  Binary indexes load lazily: postings
    decode per field on first access.  A committed ``<name>.segd``
    segment directory opens as a :class:`SegmentedIndex` — same read
    API, mmap-backed, O(1) in corpus size."""
    segment_dir = segment_dir_path(directory, name)
    if segment_dir.is_dir():
        segmented = IndexDirectory(segment_dir, name=name)
        if segmented.read_manifest() is not None:
            return SegmentedIndex(segmented)
    binary_path = index_path(directory, name, "binary")
    if binary_path.exists():
        return codec.read_index(binary_path)
    json_path = index_path(directory, name, "json")
    if not json_path.exists():
        raise IndexError_(f"no index {name!r} in {directory}")
    with open(json_path, encoding="utf-8") as handle:
        return InvertedIndex.from_json(json.load(handle))


def list_indexes(directory: PathLike) -> List[str]:
    """Names of all indexes stored in ``directory`` (any format)."""
    target = Path(directory)
    if not target.exists():
        return []
    names = {path.stem for path in target.glob("*.json")}
    names |= {path.stem
              for path in target.glob(f"*{codec.BINARY_SUFFIX}")}
    names |= {entry.name[:-len(SEGMENT_DIR_SUFFIX)]
              for entry in target.glob(f"*{SEGMENT_DIR_SUFFIX}")
              if entry.is_dir()}
    return sorted(names)
