"""MaxScore-style top-k query evaluation (the pruned serving path).

Exhaustive scoring (``Query.score_docs``) computes a score for every
matching document, even when the caller only wants the top ten.  This
module evaluates ``limit=k`` queries with *early termination*: each
scoring clause carries a score upper bound (from the postings lists'
max-impact statistics, see
:meth:`~repro.search.index.postings.PostingsList.max_frequency` and
:meth:`~repro.search.similarity.Similarity.max_score`), and once the
bounded result heap holds ``k`` documents, clauses whose combined
bounds cannot beat the current k-th score stop feeding candidates —
documents that appear only in those clauses are never scored at all.

**Pruning invariant**: the returned top-k is bit-identical to the
exhaustive path — same doc ids, same order (score descending, doc id
ascending) and same floating-point scores.  Three properties make
that hold:

1. every candidate that *is* scored goes through the clause scorers'
   ``score_one``, which replicates the exhaustive arithmetic in the
   same operation order;
2. a candidate is skipped only when its score *upper bound* is
   **strictly** below the current k-th score, so equal-score ties
   (which resolve by doc id) are never pruned away; and
3. the k-th score only ever grows, so a skip decision never needs to
   be revisited.

Queries whose type has no :class:`~repro.search.query.queries.Scorer`
(phrase, prefix, match-all, extras) return ``None`` here and fall
back to the exhaustive path, which remains the semantics oracle.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from itertools import accumulate
from typing import Iterable, List, Optional, Set, Tuple

from repro.search.index.inverted import InvertedIndex
from repro.search.query.queries import (BooleanScorer, DisMaxScorer,
                                        Query, Scorer, TermScorer)
from repro.search.similarity import Similarity

__all__ = ["TopKResult", "run_top_k"]


@dataclass
class TopKResult:
    """Outcome of a pruned top-k evaluation."""

    #: (doc_id, score), score descending then doc id ascending
    ranked: List[Tuple[int, float]]
    #: exact number of matching documents (candidate count)
    total_hits: int
    #: documents actually pushed through full scoring
    candidates_scored: int
    #: postings entries read while scoring
    postings_scanned: int
    #: True when clause bounds allowed skipping whole clauses
    pruned: bool


def run_top_k(index: InvertedIndex, similarity: Similarity,
              query: Query, k: Optional[int]) -> Optional[TopKResult]:
    """Evaluate ``query`` for its top ``k`` documents, or return
    ``None`` when the query (or ``k``) does not support pruning and
    the caller should score exhaustively."""
    if k is None or k <= 0:
        return None
    scorer = query.scorer(index, similarity)
    if scorer is None:
        return None
    if isinstance(scorer, BooleanScorer) and scorer.musts:
        return _conjunctive(scorer, k)
    if isinstance(scorer, BooleanScorer):
        bounds = [sub.max_contribution() * scorer.boost
                  for sub in scorer.shoulds]
        return _maxscore(scorer.shoulds, bounds, scorer,
                         scorer.excluded_docs(), k)
    if isinstance(scorer, DisMaxScorer):
        # per-doc dismax <= sum of the contributing clauses' bounds
        # (times boost, and tie_breaker when it exceeds 1)
        scale = scorer._boost * max(1.0, scorer._tie_breaker)
        bounds = [sub.max_contribution() * scale
                  for sub in scorer._subs]
        return _maxscore(scorer._subs, bounds, scorer, frozenset(), k)
    if isinstance(scorer, TermScorer):
        # a single term has no sibling clauses to prune against, but
        # the bounded heap still avoids materializing + sorting the
        # full score map
        candidates = scorer.doc_ids()
        heap = _heap_over(candidates, scorer, k)
        return TopKResult(ranked=_drain(heap),
                          total_hits=len(candidates),
                          candidates_scored=len(candidates),
                          postings_scanned=scorer.postings_scanned(),
                          pruned=False)
    return None


def _heap_over(candidates: Iterable[int], scorer: Scorer,
               k: int) -> List[Tuple[float, int]]:
    """Score every candidate, keeping the best ``k`` in a bounded
    min-heap keyed (score, -doc_id) so ties resolve doc-id-ascending."""
    heap: List[Tuple[float, int]] = []
    for doc_id in candidates:
        score = scorer.score_one(doc_id)
        if score is None:
            continue
        key = (score, -doc_id)
        if len(heap) < k:
            heapq.heappush(heap, key)
        elif key > heap[0]:
            heapq.heapreplace(heap, key)
    return heap


def _drain(heap: List[Tuple[float, int]]) -> List[Tuple[int, float]]:
    ordered = sorted(heap, reverse=True)
    return [(-negative_doc, score) for score, negative_doc in ordered]


def _conjunctive(scorer: BooleanScorer, k: int) -> TopKResult:
    """MUST clauses present: candidates are the (small) intersection
    of the MUST matches minus exclusions; score those and only those."""
    candidates = sorted(scorer.doc_id_set())
    heap = _heap_over(candidates, scorer, k)
    return TopKResult(ranked=_drain(heap),
                      total_hits=len(candidates),
                      candidates_scored=len(candidates),
                      postings_scanned=scorer.postings_scanned(),
                      pruned=True)


def _maxscore(clauses: List[Scorer], bounds: List[float],
              combiner: Scorer, exclude: Set[int], k: int) -> TopKResult:
    """The MaxScore loop over disjunctive clauses.

    Two pruning levels, both sound because skips require a *strict*
    bound-below-θ comparison (score ≤ bound, so a skipped doc can
    never tie the k-th entry):

    * **clause retirement** (MaxScore proper) — clauses are ordered
      by ascending bound; once the heap is full, every prefix whose
      bound sum is strictly below the k-th score stops streaming.
      Documents appearing only in retired clauses are never visited.
    * **per-document bound skip** (WAND-style) — the merge knows
      exactly which live clauses contain the current doc, so its
      upper bound is their bound sum plus the retired clauses' total
      (membership there is unknown).  Below θ → not even scored.

    Doc-id streams are merged with a linear scan over the live
    clauses rather than a heap: clause counts are small (query terms,
    not index terms), and the scan also yields the membership list the
    document bound needs.
    """
    doc_lists = [clause.doc_ids() for clause in clauses]
    count = len(clauses)
    order = sorted(range(count), key=lambda i: (bounds[i], i))
    prefix_bounds = list(accumulate(bounds[i] for i in order))

    # exact match count is cheap (set union, no scoring) and keeps
    # TopDocs.total_hits identical to the exhaustive path
    matching: Set[int] = set()
    for doc_list in doc_lists:
        matching.update(doc_list)
    matching -= exclude
    total_hits = len(matching)

    heap: List[Tuple[float, int]] = []
    theta: Optional[float] = None
    scored = 0
    pruned = False
    retired = [False] * count
    retired_bound = 0.0        # bound mass of the retired clauses
    non_essential = 0
    cursors = [0] * count
    active = [ci for ci in range(count) if doc_lists[ci]]

    def raise_theta(new_theta: float) -> None:
        nonlocal theta, non_essential, retired_bound, active, pruned
        theta = new_theta
        changed = False
        while (non_essential < count
               and prefix_bounds[non_essential] < theta):
            retired[order[non_essential]] = True
            retired_bound = prefix_bounds[non_essential]
            non_essential += 1
            changed = True
        if changed:
            pruned = True
            active = [ci for ci in active if not retired[ci]]

    while active:
        doc_id = min(doc_lists[ci][cursors[ci]] for ci in active)
        doc_bound = retired_bound
        exhausted = False
        for ci in active:
            if doc_lists[ci][cursors[ci]] == doc_id:
                doc_bound += bounds[ci]
                cursors[ci] += 1
                if cursors[ci] == len(doc_lists[ci]):
                    exhausted = True
        if exhausted:
            active = [ci for ci in active
                      if cursors[ci] < len(doc_lists[ci])]
        if doc_id in exclude:
            continue
        if theta is not None and doc_bound < theta:
            pruned = True      # provably below the k-th score
            continue
        score = combiner.score_one(doc_id)
        scored += 1
        if score is None:
            continue
        key = (score, -doc_id)
        if len(heap) < k:
            heapq.heappush(heap, key)
            if len(heap) == k:
                raise_theta(heap[0][0])
        elif key > heap[0]:
            heapq.heapreplace(heap, key)
            if heap[0][0] > theta:
                raise_theta(heap[0][0])
    return TopKResult(ranked=_drain(heap),
                      total_hits=total_hits,
                      candidates_scored=scored,
                      postings_scanned=combiner.postings_scanned(),
                      pruned=pruned)
