"""MaxScore-style top-k query evaluation (the pruned serving path).

Exhaustive scoring (``Query.score_docs``) computes a score for every
matching document, even when the caller only wants the top ten.  This
module evaluates ``limit=k`` queries with *early termination*: each
scoring clause carries a score upper bound (from the postings lists'
max-impact statistics, see
:meth:`~repro.search.index.postings.PostingsList.max_frequency` and
:meth:`~repro.search.similarity.Similarity.max_score`), and once the
bounded result heap holds ``k`` documents, clauses whose combined
bounds cannot beat the current k-th score stop feeding candidates —
documents that appear only in those clauses are never scored at all.

**Pruning invariant**: the returned top-k is bit-identical to the
exhaustive path — same doc ids, same order (score descending, doc id
ascending) and same floating-point scores.  Three properties make
that hold:

1. every candidate that *is* scored goes through the clause scorers'
   ``score_one``, which replicates the exhaustive arithmetic in the
   same operation order;
2. a candidate is skipped only when its score *upper bound* is
   **strictly** below the current k-th score, so equal-score ties
   (which resolve by doc id) are never pruned away; and
3. the k-th score only ever grows, so a skip decision never needs to
   be revisited.

Queries whose type has no :class:`~repro.search.query.queries.Scorer`
(phrase, prefix, match-all, extras) return ``None`` here and fall
back to the exhaustive path, which remains the semantics oracle.

**Segmented indexes** (anything exposing ``segment_views()``, i.e.
:class:`~repro.search.index.segments.SegmentedIndex`) are served by a
*scatter-gather* variant: one scorer per segment view, segments
scanned in ascending doc-id order against a **shared** heap and
threshold.  Because segment doc-id ranges are disjoint and ascending,
the candidate stream is the exact stream the monolithic scan would
produce, so all parity properties carry over unchanged — and a whole
segment whose best-possible score (from its *local* max-impact
statistics, which are tighter than global ones) is strictly below θ
skips scoring entirely.  Its candidates are still enumerated so
``total_hits`` stays exact.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from itertools import accumulate
from typing import Iterable, List, Optional, Set, Tuple

from repro.search.index.inverted import InvertedIndex
from repro.search.index.postings import SKIP_BLOCK
from repro.search.query.queries import (BooleanScorer, DisMaxScorer,
                                        Query, Scorer, TermScorer)
from repro.search.similarity import Similarity

__all__ = ["TopKResult", "run_top_k"]


@dataclass
class TopKResult:
    """Outcome of a pruned top-k evaluation."""

    #: (doc_id, score), score descending then doc id ascending
    ranked: List[Tuple[int, float]]
    #: exact number of matching documents (candidate count)
    total_hits: int
    #: documents actually pushed through full scoring
    candidates_scored: int
    #: postings entries read while scoring
    postings_scanned: int
    #: True when clause bounds allowed skipping whole clauses
    pruned: bool
    #: segments whose candidates were scored (scatter-gather only)
    segments_searched: int = 0
    #: segments skipped whole because their bound was below θ
    segments_pruned: int = 0
    #: skip blocks scored through the batched block path
    blocks_scored: int = 0
    #: skip blocks skipped whole because their block-max bound was
    #: strictly below θ
    blocks_pruned: int = 0


class _SharedHeap:
    """The bounded result heap plus its threshold, shared across
    segment shards.  Keys are (score, -doc_id): min-heap order equals
    "worst of the current top k", and ties resolve doc-id-ascending
    exactly like :func:`repro.search.searcher.rank_docs`."""

    __slots__ = ("heap", "k", "theta")

    def __init__(self, k: int) -> None:
        self.heap: List[Tuple[float, int]] = []
        self.k = k
        self.theta: Optional[float] = None

    def offer(self, doc_id: int, score: float) -> bool:
        """Push a scored candidate; True when θ (the k-th score)
        rose."""
        key = (score, -doc_id)
        if len(self.heap) < self.k:
            heapq.heappush(self.heap, key)
            if len(self.heap) == self.k:
                self.theta = self.heap[0][0]
                return True
        elif key > self.heap[0]:
            heapq.heapreplace(self.heap, key)
            if self.heap[0][0] > self.theta:
                self.theta = self.heap[0][0]
                return True
        return False

    def drain(self) -> List[Tuple[int, float]]:
        ordered = sorted(self.heap, reverse=True)
        return [(-negative_doc, score)
                for score, negative_doc in ordered]


def run_top_k(index, similarity: Similarity,
              query: Query, k: Optional[int]) -> Optional[TopKResult]:
    """Evaluate ``query`` for its top ``k`` documents, or return
    ``None`` when the query (or ``k``) does not support pruning and
    the caller should score exhaustively.  ``index`` is anything with
    the :class:`~repro.search.index.inverted.InvertedIndex` read API;
    segmented indexes additionally dispatch to the scatter-gather
    scan."""
    if k is None or k <= 0:
        return None
    views = getattr(index, "segment_views", None)
    if views is not None:
        return _run_segmented(views(), similarity, query, k)
    scorer = query.scorer(index, similarity)
    if scorer is None:
        return None
    shared = _SharedHeap(k)
    if isinstance(scorer, BooleanScorer) and scorer.musts:
        hits, scored = _conjunctive_scan(scorer, shared)
        return TopKResult(ranked=shared.drain(), total_hits=hits,
                          candidates_scored=scored,
                          postings_scanned=scorer.postings_scanned(),
                          pruned=True)
    clauses, bounds, scale = _disjunctive_clauses(scorer)
    if clauses is not None:
        exclude = (scorer.excluded_docs()
                   if isinstance(scorer, BooleanScorer) else frozenset())
        hits, scored, pruned, blocks_pruned = _maxscore_scan(
            clauses, bounds, scale, scorer, exclude, shared)
        return TopKResult(ranked=shared.drain(), total_hits=hits,
                          candidates_scored=scored,
                          postings_scanned=scorer.postings_scanned(),
                          pruned=pruned, blocks_pruned=blocks_pruned)
    if isinstance(scorer, TermScorer):
        # a single term has no sibling clauses to prune against, but
        # the batched block scan still skips blocks below θ and the
        # bounded heap avoids materializing + sorting a full score map
        outcome = _term_block_scan(scorer, shared)
        if outcome is None:
            candidates = scorer.doc_ids()
            scored = _heap_over(candidates, scorer, shared)
            outcome = (len(candidates), scored, False, 0, 0)
        hits, scored, pruned, blocks_scored, blocks_pruned = outcome
        return TopKResult(ranked=shared.drain(),
                          total_hits=hits,
                          candidates_scored=scored,
                          postings_scanned=scorer.postings_scanned(),
                          pruned=pruned, blocks_scored=blocks_scored,
                          blocks_pruned=blocks_pruned)
    return None


def _disjunctive_clauses(scorer: Scorer):
    """The ``(clauses, bounds, scale)`` triple for the MaxScore scan,
    or ``(None, None, 1.0)`` when the scorer is not disjunctive.
    ``bounds[i]`` is ``clauses[i].max_contribution() * scale``; the
    scale is handed out separately so per-block bounds can be pushed
    through the identical arithmetic (never a division, which could
    round a bound *below* the true maximum and break soundness)."""
    if isinstance(scorer, BooleanScorer) and not scorer.musts:
        scale = scorer.boost
        return scorer.shoulds, [sub.max_contribution() * scale
                                for sub in scorer.shoulds], scale
    if isinstance(scorer, DisMaxScorer):
        # per-doc dismax <= sum of the contributing clauses' bounds
        # (times boost, and tie_breaker when it exceeds 1)
        scale = scorer._boost * max(1.0, scorer._tie_breaker)
        return scorer._subs, [sub.max_contribution() * scale
                              for sub in scorer._subs], scale
    return None, None, 1.0


def _heap_over(candidates: Iterable[int], scorer: Scorer,
               shared: _SharedHeap) -> int:
    """Score every candidate into the shared heap; returns the number
    scored."""
    scored = 0
    for doc_id in candidates:
        score = scorer.score_one(doc_id)
        scored += 1
        if score is not None:
            shared.offer(doc_id, score)
    return scored


def _conjunctive_scan(scorer: BooleanScorer,
                      shared: _SharedHeap) -> Tuple[int, int]:
    """MUST clauses present: candidates are the (small) intersection
    of the MUST matches minus exclusions; score those and only those.
    Returns (candidate count, scored count)."""
    candidates = sorted(scorer.doc_id_set())
    _heap_over(candidates, scorer, shared)
    return len(candidates), len(candidates)


def _clause_block_bounds(clauses: List[Scorer]) -> List[Optional[object]]:
    """Per-clause block-bound accessor (``block -> unscaled bound``)
    for term clauses over block-structured postings, ``None``
    elsewhere.  Bounds are memoized on the scorer, so consulting one
    per merged document costs a dict probe."""
    accessors: List[Optional[object]] = []
    for clause in clauses:
        accessor = None
        if isinstance(clause, TermScorer) \
                and clause.block_count() is not None:
            accessor = clause.block_bound
        accessors.append(accessor)
    return accessors


def _maxscore_scan(clauses: List[Scorer], bounds: List[float],
                   scale: float, combiner: Scorer, exclude: Set[int],
                   shared: _SharedHeap) -> Tuple[int, int, bool, int]:
    """The MaxScore loop over disjunctive clauses, feeding the shared
    heap.  Returns (candidate count, scored count, pruned flag,
    blocks pruned).

    Three pruning levels, all sound because skips require a *strict*
    bound-below-θ comparison (score ≤ bound, so a skipped doc can
    never tie the k-th entry):

    * **clause retirement** (MaxScore proper) — clauses are ordered
      by ascending bound; once the heap is full, every prefix whose
      bound sum is strictly below the k-th score stops streaming.
      Documents appearing only in retired clauses are never visited.
    * **per-document bound skip** (WAND-style) — the merge knows
      exactly which live clauses contain the current doc, so its
      upper bound is their bound sum plus the retired clauses' total
      (membership there is unknown).  For a term clause the cursor
      ordinal names the skip block the doc sits in, so its
      contribution is capped by the *block-max* bound — strictly
      tighter wherever the block's best frequency undercuts the
      term's.  Below θ → not even scored.
    * **block skipping** (block-max WAND, single-survivor case) —
      once one clause remains live, its stream is drained one skip
      block per step: a block whose bound (plus the retired mass)
      falls below θ advances the cursor past the whole block without
      scoring — and, when the block maxima come from the v3 term
      dictionary, without decoding it either.

    Doc-id streams are merged with a linear scan over the live
    clauses rather than a heap: clause counts are small (query terms,
    not index terms), and the scan also yields the membership list the
    document bound needs.

    θ may already be set on entry (a previous segment shard filled the
    heap); retirement state is local to this scan, since bounds are.
    """
    doc_lists = [clause.doc_ids() for clause in clauses]
    count = len(clauses)
    order = sorted(range(count), key=lambda i: (bounds[i], i))
    prefix_bounds = list(accumulate(bounds[i] for i in order))
    block_bounds = _clause_block_bounds(clauses)

    # exact match count is cheap (set union, no scoring) and keeps
    # TopDocs.total_hits identical to the exhaustive path
    matching: Set[int] = set()
    for doc_list in doc_lists:
        matching.update(doc_list)
    matching -= exclude
    total_hits = len(matching)

    scored = 0
    pruned = False
    blocks_pruned = 0
    retired = [False] * count
    retired_bound = 0.0        # bound mass of the retired clauses
    non_essential = 0
    cursors = [0] * count
    active = [ci for ci in range(count) if doc_lists[ci]]

    def retire_below_theta() -> None:
        nonlocal non_essential, retired_bound, active, pruned
        changed = False
        while (non_essential < count
               and prefix_bounds[non_essential] < shared.theta):
            retired[order[non_essential]] = True
            retired_bound = prefix_bounds[non_essential]
            non_essential += 1
            changed = True
        if changed:
            pruned = True
            active = [ci for ci in active if not retired[ci]]

    if shared.theta is not None:
        retire_below_theta()

    while active:
        if len(active) == 1 and shared.theta is not None:
            # lone survivor: no merge left, drain its stream one skip
            # block per step.  Every doc in a block shares the block
            # bound, so one comparison either rejects the whole block
            # or admits per-doc scoring until θ rises — at which point
            # the bound is re-checked before the next doc.
            ci = active[0]
            doc_list = doc_lists[ci]
            size = len(doc_list)
            cursor = cursors[ci]
            accessor = block_bounds[ci]
            clause_bound = bounds[ci]
            while cursor < size:
                if accessor is not None:
                    tight = accessor(cursor // SKIP_BLOCK) * scale
                    block_bound = min(tight, clause_bound)
                    block_end = min(
                        (cursor // SKIP_BLOCK + 1) * SKIP_BLOCK, size)
                else:
                    block_bound = clause_bound
                    block_end = size
                if retired_bound + block_bound < shared.theta:
                    pruned = True
                    blocks_pruned += 1
                    cursor = block_end
                    continue
                while cursor < block_end:
                    doc_id = doc_list[cursor]
                    cursor += 1
                    if doc_id in exclude:
                        continue
                    score = combiner.score_one(doc_id)
                    scored += 1
                    if score is not None \
                            and shared.offer(doc_id, score):
                        break    # θ rose: re-check the block bound
            cursors[ci] = cursor
            break
        doc_id = min(doc_lists[ci][cursors[ci]] for ci in active)
        doc_bound = retired_bound
        exhausted = False
        for ci in active:
            if doc_lists[ci][cursors[ci]] == doc_id:
                accessor = block_bounds[ci]
                if accessor is None:
                    doc_bound += bounds[ci]
                else:
                    tight = accessor(cursors[ci] // SKIP_BLOCK) * scale
                    doc_bound += min(tight, bounds[ci])
                cursors[ci] += 1
                if cursors[ci] == len(doc_lists[ci]):
                    exhausted = True
        if exhausted:
            active = [ci for ci in active
                      if cursors[ci] < len(doc_lists[ci])]
        if doc_id in exclude:
            continue
        if shared.theta is not None and doc_bound < shared.theta:
            pruned = True      # provably below the k-th score
            continue
        score = combiner.score_one(doc_id)
        scored += 1
        if score is None:
            continue
        if shared.offer(doc_id, score):
            retire_below_theta()
    return total_hits, scored, pruned, blocks_pruned


def _term_block_scan(scorer: TermScorer, shared: _SharedHeap
                     ) -> Optional[Tuple[int, int, bool, int, int]]:
    """Batched scan of a lone term scorer, one skip block per step:
    bound the block from its block-max statistic, skip it whole when
    strictly below θ (no decode when the maxima are persisted in the
    term dictionary), otherwise score it with the batched typed-column
    loop.  Returns ``(hits, scored, pruned, blocks_scored,
    blocks_pruned)``, or ``None`` when the postings expose no block
    structure and the caller should fall back to the per-doc loop."""
    blocks = scorer.block_count()
    if blocks is None:
        return None
    scored = 0
    pruned = False
    blocks_scored = 0
    blocks_pruned = 0
    offer = shared.offer
    for block in range(blocks):
        theta = shared.theta
        if theta is not None and scorer.block_bound(block) < theta:
            pruned = True
            blocks_pruned += 1
            continue
        pairs = scorer.score_block(block)
        blocks_scored += 1
        scored += len(pairs)
        for doc_id, score in pairs:
            offer(doc_id, score)
    return scorer.matching_count(), scored, pruned, blocks_scored, \
        blocks_pruned


# ----------------------------------------------------------------------
# scatter-gather over segments
# ----------------------------------------------------------------------

def _matching_count(scorer: Scorer) -> int:
    """Candidate count of one segment's scorer without scoring —
    pruned segments still owe their exact contribution to
    ``total_hits``."""
    if isinstance(scorer, BooleanScorer) or isinstance(scorer,
                                                       DisMaxScorer):
        return len(scorer.doc_id_set())
    return len(scorer.doc_ids())


def _segment_bound(scorer: Scorer) -> float:
    """Upper bound on any single document's score inside one segment,
    from that segment's local max-impact statistics."""
    return scorer.max_contribution()


def _run_segmented(views, similarity: Similarity, query: Query,
                   k: int) -> Optional[TopKResult]:
    """Scatter-gather top-k: one scorer per segment, shared heap/θ.

    Segments are visited in ascending doc-id (manifest) order, so the
    concatenation of their candidate streams equals the monolithic
    scan's stream — results are bit-identical.  Once the heap is
    full, a segment whose score bound is strictly below θ contributes
    its candidate count and nothing else.
    """
    if not views:
        return None                 # empty set: exhaustive returns {}
    scorers = []
    for view in views:
        scorer = query.scorer(view, similarity)
        if scorer is None:          # query type without a scorer —
            return None             # same fallback as monolithic
        scorers.append(scorer)

    shared = _SharedHeap(k)
    total_hits = 0
    scored_total = 0
    pruned = False
    searched = 0
    skipped = 0
    blocks_scored = 0
    blocks_pruned = 0
    is_conjunctive = (isinstance(scorers[0], BooleanScorer)
                      and scorers[0].musts)
    for scorer in scorers:
        if shared.theta is not None \
                and _segment_bound(scorer) < shared.theta:
            total_hits += _matching_count(scorer)
            skipped += 1
            pruned = True
            continue
        searched += 1
        if is_conjunctive:
            hits, scored = _conjunctive_scan(scorer, shared)
            total_hits += hits
            scored_total += scored
            pruned = True
        else:
            clauses, bounds, scale = _disjunctive_clauses(scorer)
            if clauses is not None:
                exclude = (scorer.excluded_docs()
                           if isinstance(scorer, BooleanScorer)
                           else frozenset())
                hits, scored, seg_pruned, seg_blocks = _maxscore_scan(
                    clauses, bounds, scale, scorer, exclude, shared)
                total_hits += hits
                scored_total += scored
                blocks_pruned += seg_blocks
                pruned = pruned or seg_pruned
            elif isinstance(scorer, TermScorer):
                outcome = _term_block_scan(scorer, shared)
                if outcome is None:
                    candidates = scorer.doc_ids()
                    scored = _heap_over(candidates, scorer, shared)
                    outcome = (len(candidates), scored, False, 0, 0)
                hits, scored, seg_pruned, seg_scored, seg_skipped = \
                    outcome
                total_hits += hits
                scored_total += scored
                blocks_scored += seg_scored
                blocks_pruned += seg_skipped
                pruned = pruned or seg_pruned
            else:
                return None
    return TopKResult(
        ranked=shared.drain(), total_hits=total_hits,
        candidates_scored=scored_total,
        postings_scanned=sum(scorer.postings_scanned()
                             for scorer in scorers),
        pruned=pruned, segments_searched=searched,
        segments_pruned=skipped, blocks_scored=blocks_scored,
        blocks_pruned=blocks_pruned)
