"""Full-text search engine — the Lucene substrate.

A from-scratch inverted-index engine providing what the paper's system
uses from Apache Lucene: analyzers, multi-field documents with boosts,
TF-IDF (classic) and BM25 scoring, term/phrase/boolean/prefix queries,
a query-string parser and JSON persistence.
"""

from repro.search.analysis import (Analyzer, KeywordAnalyzer,
                                   PorterStemmer, SimpleAnalyzer,
                                   StandardAnalyzer)
from repro.search.document import Document, Field
from repro.search.index import (IndexWriter, InvertedIndex,
                                PerFieldAnalyzer, load_index, save_index)
from repro.search.query import (BooleanQuery, DisMaxQuery, MatchAllQuery,
                                Occur, PhraseQuery, PrefixQuery, Query,
                                QueryParser, TermQuery)
from repro.search.highlight import Highlighter, collect_terms
from repro.search.query.extras import FuzzyQuery, RangeQuery
from repro.search.spell import SpellChecker, Suggestion
from repro.search.searcher import IndexSearcher, ScoredDoc, TopDocs
from repro.search.similarity import (BM25Similarity, ClassicSimilarity,
                                     Similarity)

__all__ = [
    "Analyzer",
    "StandardAnalyzer",
    "SimpleAnalyzer",
    "KeywordAnalyzer",
    "PorterStemmer",
    "Document",
    "Field",
    "InvertedIndex",
    "IndexWriter",
    "PerFieldAnalyzer",
    "save_index",
    "load_index",
    "Query",
    "TermQuery",
    "PhraseQuery",
    "PrefixQuery",
    "MatchAllQuery",
    "DisMaxQuery",
    "BooleanQuery",
    "Occur",
    "RangeQuery",
    "FuzzyQuery",
    "Highlighter",
    "collect_terms",
    "SpellChecker",
    "Suggestion",
    "QueryParser",
    "IndexSearcher",
    "TopDocs",
    "ScoredDoc",
    "Similarity",
    "ClassicSimilarity",
    "BM25Similarity",
]
