"""Team and player rosters for the simulated corpus.

Eight 2009/10-era Champions-League squads.  The rosters deliberately
contain every entity the paper's evaluation queries mention by name —
Barcelona, Messi, Henry, Ronaldo, Casillas, Alex, Daniel, Florent —
so Q-1…Q-10 and the phrasal-expression queries (Table 6) run verbatim
against the simulated data.

Each squad lists 16 players: the first 11 are the starters (exactly
one goalkeeper), the rest the bench.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.soccer.domain import Player, Position, Team

__all__ = ["build_teams", "REFEREES", "FIXTURES", "COMPETITION",
           "round_robin_fixtures"]

COMPETITION = "UEFA Champions League"

REFEREES = [
    "Massimo Busacca",
    "Howard Webb",
    "Frank De Bleeckere",
    "Wolfgang Stark",
    "Olegário Benquerença",
    "Martin Hansson",
]

#: (home, away, date, kick-off) — ten fixtures; Barcelona and Real
#: Madrid appear three times each so the team-centric queries have
#: enough relevant events.
FIXTURES: List[Tuple[str, str, str, str]] = [
    ("Barcelona", "Manchester United", "2009-05-27", "20:45"),
    ("Chelsea", "Barcelona", "2009-05-06", "20:45"),
    ("Real Madrid", "Barcelona", "2009-11-29", "19:00"),
    ("Real Madrid", "Liverpool", "2009-02-25", "20:45"),
    ("Arsenal", "Real Madrid", "2009-03-11", "20:45"),
    ("Chelsea", "Manchester United", "2009-09-20", "17:00"),
    ("Internazionale", "Chelsea", "2010-02-24", "20:45"),
    ("Bayern Munich", "Internazionale", "2010-03-09", "20:45"),
    ("Liverpool", "Arsenal", "2009-04-21", "20:45"),
    ("Bayern Munich", "Manchester United", "2010-03-30", "20:45"),
]

def round_robin_fixtures(count: int,
                         start_date: str = "2009-09-15"
                         ) -> List[Tuple[str, str, str, str]]:
    """Generate ``count`` fixtures cycling through all team pairings.

    Used by scalability benchmarks that need corpora larger than the
    paper's ten matches.  Dates advance week by week; pairings walk a
    home/away round robin over the eight squads, so every corpus size
    stays realistic (no team plays itself, home advantage rotates).
    """
    import datetime

    team_names = list(_SQUADS)
    pairings = []
    for i, home in enumerate(team_names):
        for away in team_names[i + 1:]:
            pairings.append((home, away))
            pairings.append((away, home))
    date = datetime.date.fromisoformat(start_date)
    fixtures = []
    for index in range(count):
        home, away = pairings[index % len(pairings)]
        fixtures.append((home, away, date.isoformat(), "20:45"))
        date += datetime.timedelta(days=7)
    return fixtures


_P = Position

#: squad spec: (display name, full name, position, shirt number)
_SQUADS: Dict[str, dict] = {
    "Barcelona": {
        "city": "Barcelona", "stadium": "Camp Nou", "country": "Spain",
        "players": [
            ("Valdes", "Victor Valdes", _P.GOALKEEPER, 1),
            ("Daniel", "Daniel Alves", _P.RIGHT_BACK, 2),
            ("Pique", "Gerard Pique", _P.CENTRE_BACK, 3),
            ("Puyol", "Carles Puyol", _P.CENTRE_BACK, 5),
            ("Abidal", "Eric Abidal", _P.LEFT_BACK, 22),
            ("Busquets", "Sergio Busquets", _P.DEFENSIVE_MIDFIELDER, 16),
            ("Xavi", "Xavi Hernandez", _P.CENTRAL_MIDFIELDER, 6),
            ("Iniesta", "Andres Iniesta", _P.ATTACKING_MIDFIELDER, 8),
            ("Messi", "Lionel Messi", _P.RIGHT_WINGER, 10),
            ("Eto'o", "Samuel Eto'o", _P.CENTRE_FORWARD, 9),
            ("Henry", "Thierry Henry", _P.LEFT_WINGER, 14),
            ("Pinto", "Jose Manuel Pinto", _P.GOALKEEPER, 13),
            ("Keita", "Seydou Keita", _P.CENTRAL_MIDFIELDER, 15),
            ("Pedro", "Pedro Rodriguez", _P.RIGHT_WINGER, 17),
            ("Bojan", "Bojan Krkic", _P.STRIKER, 11),
            ("Toure", "Yaya Toure", _P.DEFENSIVE_MIDFIELDER, 24),
        ],
    },
    "Real Madrid": {
        "city": "Madrid", "stadium": "Santiago Bernabeu",
        "country": "Spain",
        "players": [
            ("Casillas", "Iker Casillas", _P.GOALKEEPER, 1),
            ("Ramos", "Sergio Ramos", _P.RIGHT_BACK, 4),
            ("Pepe", "Kepler Pepe", _P.CENTRE_BACK, 3),
            ("Albiol", "Raul Albiol", _P.CENTRE_BACK, 18),
            ("Arbeloa", "Alvaro Arbeloa", _P.LEFT_BACK, 17),
            ("Alonso", "Xabi Alonso", _P.DEFENSIVE_MIDFIELDER, 14),
            ("Gago", "Fernando Gago", _P.CENTRAL_MIDFIELDER, 8),
            ("Kaka", "Ricardo Kaka", _P.ATTACKING_MIDFIELDER, 10),
            ("Ronaldo", "Cristiano Ronaldo", _P.RIGHT_WINGER, 9),
            ("Benzema", "Karim Benzema", _P.CENTRE_FORWARD, 11),
            ("Higuain", "Gonzalo Higuain", _P.STRIKER, 20),
            ("Dudek", "Jerzy Dudek", _P.GOALKEEPER, 25),
            ("Granero", "Esteban Granero", _P.CENTRAL_MIDFIELDER, 15),
            ("Raul", "Raul Gonzalez", _P.STRIKER, 7),
            ("Marcelo", "Marcelo Vieira", _P.LEFT_BACK, 12),
            ("Diarra", "Lassana Diarra", _P.DEFENSIVE_MIDFIELDER, 24),
        ],
    },
    "Chelsea": {
        "city": "London", "stadium": "Stamford Bridge",
        "country": "England",
        "players": [
            ("Cech", "Petr Cech", _P.GOALKEEPER, 1),
            ("Ivanovic", "Branislav Ivanovic", _P.RIGHT_BACK, 2),
            ("Alex", "Alex da Costa", _P.CENTRE_BACK, 33),
            ("Terry", "John Terry", _P.CENTRE_BACK, 26),
            ("Cole", "Ashley Cole", _P.LEFT_BACK, 3),
            ("Essien", "Michael Essien", _P.DEFENSIVE_MIDFIELDER, 5),
            ("Lampard", "Frank Lampard", _P.CENTRAL_MIDFIELDER, 8),
            ("Ballack", "Michael Ballack", _P.CENTRAL_MIDFIELDER, 13),
            ("Florent", "Florent Malouda", _P.LEFT_WINGER, 15),
            ("Anelka", "Nicolas Anelka", _P.RIGHT_WINGER, 39),
            ("Drogba", "Didier Drogba", _P.CENTRE_FORWARD, 11),
            ("Hilario", "Henrique Hilario", _P.GOALKEEPER, 40),
            ("Mikel", "John Obi Mikel", _P.DEFENSIVE_MIDFIELDER, 12),
            ("Deco", "Anderson Deco", _P.ATTACKING_MIDFIELDER, 20),
            ("Kalou", "Salomon Kalou", _P.RIGHT_WINGER, 21),
            ("Belletti", "Juliano Belletti", _P.RIGHT_BACK, 35),
        ],
    },
    "Manchester United": {
        "city": "Manchester", "stadium": "Old Trafford",
        "country": "England",
        "players": [
            ("van der Sar", "Edwin van der Sar", _P.GOALKEEPER, 1),
            ("Rafael", "Rafael da Silva", _P.RIGHT_BACK, 21),
            ("Vidic", "Nemanja Vidic", _P.CENTRE_BACK, 15),
            ("Ferdinand", "Rio Ferdinand", _P.CENTRE_BACK, 5),
            ("Evra", "Patrice Evra", _P.LEFT_BACK, 3),
            ("Carrick", "Michael Carrick", _P.DEFENSIVE_MIDFIELDER, 16),
            ("Scholes", "Paul Scholes", _P.CENTRAL_MIDFIELDER, 18),
            ("Anderson", "Anderson Oliveira", _P.CENTRAL_MIDFIELDER, 8),
            ("Valencia", "Antonio Valencia", _P.RIGHT_WINGER, 25),
            ("Rooney", "Wayne Rooney", _P.CENTRE_FORWARD, 10),
            ("Giggs", "Ryan Giggs", _P.LEFT_WINGER, 11),
            ("Kuszczak", "Tomasz Kuszczak", _P.GOALKEEPER, 29),
            ("Fletcher", "Darren Fletcher", _P.DEFENSIVE_MIDFIELDER, 24),
            ("Berbatov", "Dimitar Berbatov", _P.STRIKER, 9),
            ("Nani", "Luis Nani", _P.LEFT_WINGER, 17),
            ("Park", "Ji-sung Park", _P.RIGHT_WINGER, 13),
        ],
    },
    "Liverpool": {
        "city": "Liverpool", "stadium": "Anfield", "country": "England",
        "players": [
            ("Reina", "Pepe Reina", _P.GOALKEEPER, 25),
            ("Johnson", "Glen Johnson", _P.RIGHT_BACK, 2),
            ("Carragher", "Jamie Carragher", _P.CENTRE_BACK, 23),
            ("Agger", "Daniel Agger", _P.CENTRE_BACK, 5),
            ("Insua", "Emiliano Insua", _P.LEFT_BACK, 22),
            ("Mascherano", "Javier Mascherano", _P.DEFENSIVE_MIDFIELDER, 20),
            ("Gerrard", "Steven Gerrard", _P.ATTACKING_MIDFIELDER, 8),
            ("Lucas", "Lucas Leiva", _P.CENTRAL_MIDFIELDER, 21),
            ("Kuyt", "Dirk Kuyt", _P.RIGHT_WINGER, 18),
            ("Torres", "Fernando Torres", _P.CENTRE_FORWARD, 9),
            ("Benayoun", "Yossi Benayoun", _P.LEFT_WINGER, 15),
            ("Cavalieri", "Diego Cavalieri", _P.GOALKEEPER, 1),
            ("Aquilani", "Alberto Aquilani", _P.CENTRAL_MIDFIELDER, 4),
            ("N'Gog", "David N'Gog", _P.STRIKER, 24),
            ("Babel", "Ryan Babel", _P.LEFT_WINGER, 19),
            ("Skrtel", "Martin Skrtel", _P.CENTRE_BACK, 37),
        ],
    },
    "Arsenal": {
        "city": "London", "stadium": "Emirates Stadium",
        "country": "England",
        "players": [
            ("Almunia", "Manuel Almunia", _P.GOALKEEPER, 1),
            ("Sagna", "Bacary Sagna", _P.RIGHT_BACK, 3),
            ("Gallas", "William Gallas", _P.CENTRE_BACK, 10),
            ("Vermaelen", "Thomas Vermaelen", _P.CENTRE_BACK, 5),
            ("Clichy", "Gael Clichy", _P.LEFT_BACK, 22),
            ("Song", "Alex Song", _P.DEFENSIVE_MIDFIELDER, 17),
            ("Fabregas", "Cesc Fabregas", _P.ATTACKING_MIDFIELDER, 4),
            ("Denilson", "Denilson Neves", _P.CENTRAL_MIDFIELDER, 15),
            ("Walcott", "Theo Walcott", _P.RIGHT_WINGER, 14),
            ("van Persie", "Robin van Persie", _P.CENTRE_FORWARD, 11),
            ("Arshavin", "Andrey Arshavin", _P.LEFT_WINGER, 23),
            ("Fabianski", "Lukasz Fabianski", _P.GOALKEEPER, 21),
            ("Diaby", "Abou Diaby", _P.CENTRAL_MIDFIELDER, 2),
            ("Eduardo", "Eduardo da Silva", _P.STRIKER, 9),
            ("Rosicky", "Tomas Rosicky", _P.ATTACKING_MIDFIELDER, 7),
            ("Eboue", "Emmanuel Eboue", _P.RIGHT_BACK, 27),
        ],
    },
    "Internazionale": {
        "city": "Milan", "stadium": "San Siro", "country": "Italy",
        "players": [
            ("Julio Cesar", "Julio Cesar Soares", _P.GOALKEEPER, 12),
            ("Maicon", "Maicon Douglas", _P.RIGHT_BACK, 13),
            ("Lucio", "Lucimar Lucio", _P.CENTRE_BACK, 6),
            ("Samuel", "Walter Samuel", _P.CENTRE_BACK, 25),
            ("Chivu", "Cristian Chivu", _P.LEFT_BACK, 26),
            ("Cambiasso", "Esteban Cambiasso", _P.DEFENSIVE_MIDFIELDER, 19),
            ("Zanetti", "Javier Zanetti", _P.CENTRAL_MIDFIELDER, 4),
            ("Sneijder", "Wesley Sneijder", _P.ATTACKING_MIDFIELDER, 10),
            ("Pandev", "Goran Pandev", _P.LEFT_WINGER, 27),
            ("Milito", "Diego Milito", _P.CENTRE_FORWARD, 22),
            ("Balotelli", "Mario Balotelli", _P.STRIKER, 45),
            ("Toldo", "Francesco Toldo", _P.GOALKEEPER, 1),
            ("Stankovic", "Dejan Stankovic", _P.CENTRAL_MIDFIELDER, 5),
            ("Muntari", "Sulley Muntari", _P.DEFENSIVE_MIDFIELDER, 11),
            ("Quaresma", "Ricardo Quaresma", _P.RIGHT_WINGER, 7),
            ("Materazzi", "Marco Materazzi", _P.CENTRE_BACK, 23),
        ],
    },
    "Bayern Munich": {
        "city": "Munich", "stadium": "Allianz Arena",
        "country": "Germany",
        "players": [
            ("Butt", "Hans-Jorg Butt", _P.GOALKEEPER, 22),
            ("Lahm", "Philipp Lahm", _P.RIGHT_BACK, 21),
            ("Demichelis", "Martin Demichelis", _P.CENTRE_BACK, 6),
            ("Badstuber", "Holger Badstuber", _P.CENTRE_BACK, 28),
            ("Pranjic", "Danijel Pranjic", _P.LEFT_BACK, 23),
            ("van Bommel", "Mark van Bommel", _P.DEFENSIVE_MIDFIELDER, 17),
            ("Schweinsteiger", "Bastian Schweinsteiger",
             _P.CENTRAL_MIDFIELDER, 31),
            ("Muller", "Thomas Muller", _P.ATTACKING_MIDFIELDER, 25),
            ("Robben", "Arjen Robben", _P.RIGHT_WINGER, 10),
            ("Gomez", "Mario Gomez", _P.CENTRE_FORWARD, 33),
            ("Ribery", "Franck Ribery", _P.LEFT_WINGER, 7),
            ("Rensing", "Michael Rensing", _P.GOALKEEPER, 1),
            ("Altintop", "Hamit Altintop", _P.CENTRAL_MIDFIELDER, 8),
            ("Klose", "Miroslav Klose", _P.STRIKER, 18),
            ("Olic", "Ivica Olic", _P.STRIKER, 11),
            ("Tymoshchuk", "Anatoliy Tymoshchuk",
             _P.DEFENSIVE_MIDFIELDER, 44),
        ],
    },
}


def build_teams() -> Dict[str, Team]:
    """Instantiate all eight teams with their squads."""
    teams: Dict[str, Team] = {}
    for name, spec in _SQUADS.items():
        squad = [Player(name=display, full_name=full, position=position,
                        shirt_number=number)
                 for display, full, position, number in spec["players"]]
        teams[name] = Team(name=name, city=spec["city"],
                           stadium=spec["stadium"],
                           country=spec["country"], squad=squad)
    return teams
