"""Narration generation: ground-truth events → UEFA-style text.

The templates reproduce the *lexical gaps* the paper's evaluation
turns on:

* goal narrations say "scores!" and almost never contain the word
  "goal" (§4: "Since they omit the word 'goal' in narrations, the
  traditional index is not able to retrieve all the goals");
* foul narrations mostly talk about free-kicks and challenges, not
  "foul";
* booking narrations split between "is booked" and "is shown the
  yellow card", so a traditional search for "yellow card" finds only
  part of them (the Q-5 TRAD ≈ 55% effect);
* shot narrations use "effort"/"drive"/"strike", never "shoot", so
  Q-10 gets nothing from free text;
* save narrations usually do contain "save" (the Q-9 TRAD ≈ 64%
  effect).

Every event kind has several templates; the chooser is seeded, so a
given corpus seed fixes the narration text exactly.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.errors import ExtractionError
from repro.soccer.domain import EventKind, GroundTruthEvent, Match

__all__ = ["NarrationGenerator", "Narration"]


class Narration:
    """One minute-by-minute line: minute, text, source event id (or
    None for colour commentary)."""

    __slots__ = ("minute", "text", "event_id")

    def __init__(self, minute: int, text: str,
                 event_id: str | None) -> None:
        self.minute = minute
        self.text = text
        self.event_id = event_id

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Narration {self.minute}' {self.text[:40]!r}>"


# Template notation: {s}=subject display name, {o}=object display name,
# {t}=acting team, {ot}=object team, {st}=stadium.  Weights pick among
# variants.
_TEMPLATES: Dict[str, List[tuple]] = {
    EventKind.GOAL: [
        ("{s} ({t}) scores! {t} take the lead through their number {n}.", 5),
        ("{s} ({t}) scores! A clinical finish from close range.", 5),
        ("{s} ({t}) scores! The away end erupts.", 3),
        ("{s} ({t}) scores! It's his fourth goal this season.", 1),
    ],
    EventKind.PENALTY_GOAL: [
        ("{s} ({t}) converts the penalty, sending the keeper "
         "the wrong way.", 1),
        ("{s} ({t}) makes no mistake from the spot.", 1),
    ],
    EventKind.OWN_GOAL: [
        ("Disaster for {t} as {s} turns the ball into his own net.", 1),
        ("{s} ({t}) inadvertently diverts the cross past his "
         "own keeper.", 1),
    ],
    EventKind.MISSED_GOAL: [
        ("{s} ({t}) misses a goal from six yards out.", 2),
        ("{s} ({t}) fires wide of the far post.", 3),
        ("{s} ({t}) sends the header over the bar.", 2),
        ("{s} ({t}) drags the effort inches wide.", 2),
    ],
    EventKind.SAVE: [
        ("Great save by {s} ({t}) to deny {o}.", 3),
        ("{s} ({t}) saves well from {o}'s low drive.", 3),
        ("{s} ({t}) parries {o}'s fierce strike.", 2),
        ("{s} ({t}) gathers {o}'s tame effort comfortably.", 2),
    ],
    EventKind.SHOOT: [
        ("{s} ({t}) lets fly from 25 metres but the effort "
         "is blocked.", 2),
        ("{s} ({t}) tries his luck from distance.", 2),
        ("{s} ({t}) drives a low effort towards the near post.", 2),
    ],
    EventKind.FOUL: [
        ("{s} gives away a free-kick following a challenge on {o}.", 3),
        ("{s} ({t}) commits a foul after challenging {o}.", 2),
        ("{s} brings down {o} just outside the area.", 2),
        ("Free-kick to {ot} after {s} trips {o}.", 2),
    ],
    EventKind.HANDBALL: [
        ("{s} ({t}) is penalised for handball.", 1),
    ],
    EventKind.OFFSIDE: [
        ("{s} ({t}) is flagged for offside.", 3),
        ("{s} ({t}) strays offside as the ball is played through.", 2),
    ],
    EventKind.YELLOW_CARD: [
        # "booked" variants dominate, as on UEFA.com — that lexical gap
        # is why a traditional search for "yellow card" only finds part
        # of the bookings (the paper's Q-5 TRAD ≈ 55%).
        ("{s} ({t}) is booked for a late challenge.", 4),
        ("{s} ({t}) is shown the yellow card.", 2),
        ("Yellow card for {s} after persistent fouling.", 2),
    ],
    EventKind.RED_CARD: [
        ("{s} ({t}) is sent off! The referee had no choice.", 2),
        ("{s} ({t}) is shown a straight red card.", 2),
    ],
    EventKind.CORNER: [
        ("{s} ({t}) delivers the corner.", 3),
        ("{s} ({t}) swings in a corner from the right.", 2),
    ],
    EventKind.FREE_KICK: [
        ("{s} ({t}) whips the free-kick into the box.", 2),
        ("{s} ({t}) stands over the free-kick... it clips "
         "the wall.", 1),
    ],
    EventKind.PENALTY: [
        ("Penalty to {t}! {s} steps up.", 1),
    ],
    EventKind.SUBSTITUTION: [
        ("{t} substitution: {s} replaces {o}.", 3),
        ("{o} makes way for {s} in a tactical switch by {t}.", 2),
    ],
    EventKind.INJURY: [
        ("{o} ({t}) is down injured and needs treatment.", 2),
        ("Worrying moment as {o} pulls up holding his hamstring.", 2),
    ],
    EventKind.TACKLE: [
        ("{s} ({t}) wins the ball with a strong tackle on {o}.", 2),
        ("Superb sliding tackle by {s} to dispossess {o}.", 2),
    ],
    EventKind.DRIBBLE: [
        ("{s} ({t}) skips past {o} with a lovely piece of skill.", 2),
        ("{s} dances through, leaving {o} behind.", 2),
    ],
    EventKind.CLEARANCE: [
        ("{s} ({t}) hacks the ball clear under pressure.", 2),
        ("{s} heads the danger away.", 2),
    ],
    EventKind.INTERCEPTION: [
        ("{s} ({t}) reads the pass and intercepts.", 2),
        ("{s} steps in to cut out the through ball.", 2),
    ],
    EventKind.PASS: [
        ("{s} feeds {o} on the edge of the area.", 3),
        ("{s} finds {o} with a neat pass.", 3),
        ("{s} slips the ball through to {o}.", 2),
    ],
    EventKind.LONG_PASS: [
        ("{s} plays a long ball towards {o}.", 2),
        ("{s} sprays a raking long pass out to {o}.", 2),
    ],
    EventKind.CROSS: [
        ("{s} crosses for {o} at the back post.", 2),
        ("{s} whips in a cross looking for {o}.", 2),
    ],
    EventKind.KICK_OFF: [
        ("We are under way at {st}.", 1),
    ],
    EventKind.HALF_TIME: [
        ("The referee blows for half-time.", 1),
    ],
    EventKind.FULL_TIME: [
        ("Full-time at {st}. That's all from the action here.", 1),
    ],
}

#: colour commentary templates — narrations with no underlying event
#: (the paper's ~280 unextracted narrations).  A few mention "goal" on
#: purpose: they are the false positives that keep TRAD's precision on
#: Q-1 near, but not exactly, zero.
_COLOR_TEMPLATES: List[str] = [
    "{p} is in the thick of it again, receiving the ball on the "
    "edge of the area.",
    "{t} are dominating possession without creating much.",
    "The tempo has dropped in the last few minutes.",
    "Chances at both ends but the score stays level for now.",
    "The fans are in full voice here at {st}.",
    "{p} calls for the ball on the left flank.",
    "A spell of patient build-up play from {t}.",
    "What a goalmouth scramble that was — somehow it stays out!",
    "{p} gestures to the bench; he may be struggling.",
    "The fourth official signals two minutes of added time.",
    "{t} push more men forward in search of a goal.",
    "Neither side able to take control of midfield so far.",
    "{p} and {q} exchange words after that coming together.",
    "A lull in the game as {t} knock it around the back.",
    "The pitch is cutting up badly in the middle of the park.",
]


class NarrationGenerator:
    """Renders matches into minute-by-minute narration lists.

    ``templates``/``color_templates`` default to the English (UEFA
    phrasebook) set; pass the Turkish set from
    :mod:`repro.soccer.turkish` to simulate the SporX crawl instead.
    """

    def __init__(self, seed: int = 0,
                 templates: Dict[str, List[tuple]] | None = None,
                 color_templates: List[str] | None = None) -> None:
        self._rng = random.Random(seed)
        self._templates = templates if templates is not None \
            else _TEMPLATES
        self._color_templates = color_templates \
            if color_templates is not None else _COLOR_TEMPLATES

    def narrate_event(self, match: Match,
                      event: GroundTruthEvent) -> Narration:
        """Render one event into its narration line."""
        templates = self._templates.get(event.kind)
        if not templates:
            raise ExtractionError(f"no narration template for {event.kind}")
        texts = [text for text, _ in templates]
        weights = [weight for _, weight in templates]
        template = self._rng.choices(texts, weights=weights, k=1)[0]
        text = template.format(
            s=event.subject.name if event.subject else "",
            o=event.object.name if event.object else "",
            t=event.team or "",
            ot=event.object_team or "",
            st=match.stadium,
            n=event.subject.shirt_number if event.subject else "",
        )
        return Narration(event.minute, text, event.event_id)

    def color_narration(self, match: Match, minute: int) -> Narration:
        """Render one colour-commentary line (no underlying event)."""
        template = self._rng.choice(self._color_templates)
        team = self._rng.choice(match.teams)
        player = self._rng.choice(team.starters)
        other = self._rng.choice(
            [p for p in team.starters if p is not player])
        text = template.format(p=player.name, q=other.name, t=team.name,
                               st=match.stadium)
        return Narration(minute, text, None)

    def narrate_match(self, match: Match,
                      total_narrations: int | None = None
                      ) -> List[Narration]:
        """All event narrations plus colour lines.

        When ``total_narrations`` is given, colour lines pad the list
        to exactly that many entries (used by the corpus builder to hit
        the paper's 1182-narration total).
        """
        narrations = [self.narrate_event(match, event)
                      for event in match.events]
        target = total_narrations if total_narrations is not None \
            else len(narrations) + self._rng.randint(24, 32)
        while len(narrations) < target:
            narrations.append(
                self.color_narration(match, self._rng.randint(1, 90)))
        narrations.sort(key=lambda n: (n.minute, n.event_id or "~"))
        return narrations
