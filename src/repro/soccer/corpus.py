"""The standard evaluation corpus.

The paper evaluates over **10 UEFA matches, 1182 narrations, 902
extracted events** (§4).  :func:`standard_corpus` reproduces a corpus
with exactly 1182 narrations over the 10 fixtures; the event total is
whatever the seeded simulator produces (tuned to land near 902 — the
realized number is reported by :func:`corpus_statistics` and recorded
in EXPERIMENTS.md).

The corpus is fully determined by ``seed``: matches, events, narration
wording, colour padding — everything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.soccer.crawler import CrawledMatch, SimulatedCrawler
from repro.soccer.domain import EventKind, Match, Team
from repro.soccer.names import FIXTURES, build_teams
from repro.soccer.simulator import ScriptedEvent

__all__ = ["Corpus", "standard_corpus", "corpus_statistics",
           "PAPER_NARRATION_COUNT", "PAPER_EVENT_COUNT", "DEFAULT_SEED"]

PAPER_NARRATION_COUNT = 1182
PAPER_EVENT_COUNT = 902

#: chosen so the seeded simulator yields *exactly* the paper's corpus
#: totals (1182 narrations, 902 events over the 10 fixtures) and the
#: published per-query relevant counts where the queries pin them:
#: 3 Messi goals (Q-3) and 2 Alex yellow cards (Q-5).
DEFAULT_SEED = 333

#: Deterministic events injected per fixture index so that every
#: evaluation query (Table 3) and phrasal query (Table 6) has relevant
#: occurrences in the corpus, as the paper's real crawl did: Messi's
#: goals (Q-3), Alex's yellow cards (Q-5), Henry's negative moves
#: (Q-7) and the Daniel↔Florent fouls (Table 6).
SCRIPTED_EVENTS: Dict[int, List[ScriptedEvent]] = {
    # Barcelona vs Manchester United
    0: [
        ScriptedEvent(EventKind.GOAL, 23, "Barcelona", subject="Messi"),
        ScriptedEvent(EventKind.OFFSIDE, 31, "Barcelona",
                      subject="Henry"),
        ScriptedEvent(EventKind.FOUL, 55, "Barcelona", subject="Henry",
                      object_="Rafael"),
    ],
    # Chelsea vs Barcelona — the Table 6 match
    1: [
        ScriptedEvent(EventKind.FOUL, 38, "Barcelona", subject="Daniel",
                      object_="Florent"),
        ScriptedEvent(EventKind.FOUL, 64, "Chelsea", subject="Florent",
                      object_="Daniel"),
        ScriptedEvent(EventKind.FOUL, 42, "Chelsea", subject="Alex",
                      object_="Messi"),
        ScriptedEvent(EventKind.YELLOW_CARD, 42, "Chelsea",
                      subject="Alex"),
        ScriptedEvent(EventKind.MISSED_GOAL, 71, "Barcelona",
                      subject="Henry"),
        ScriptedEvent(EventKind.GOAL, 81, "Barcelona", subject="Messi"),
    ],
    # Real Madrid vs Barcelona
    2: [
        ScriptedEvent(EventKind.GOAL, 77, "Barcelona", subject="Messi"),
    ],
    # Chelsea vs Manchester United
    5: [
        ScriptedEvent(EventKind.FOUL, 84, "Chelsea", subject="Alex",
                      object_="Rooney"),
        ScriptedEvent(EventKind.YELLOW_CARD, 84, "Chelsea",
                      subject="Alex"),
    ],
}


@dataclass
class Corpus:
    """Simulated matches plus their crawl artifacts."""

    teams: Dict[str, Team]
    matches: List[Match]
    crawled: List[CrawledMatch]
    seed: int

    @property
    def narration_count(self) -> int:
        return sum(len(c.narrations) for c in self.crawled)

    @property
    def event_count(self) -> int:
        return sum(len(m.events) for m in self.matches)

    def match_by_id(self, match_id: str) -> Match:
        for match in self.matches:
            if match.match_id == match_id:
                return match
        raise KeyError(match_id)


def standard_corpus(seed: int = DEFAULT_SEED,
                    fixtures: List[Tuple[str, str, str, str]] | None = None,
                    total_narrations: int = PAPER_NARRATION_COUNT) -> Corpus:
    """Build the standard 10-match corpus.

    Colour-commentary padding is distributed so the total narration
    count is exactly ``total_narrations`` (each match gets its events'
    narrations plus an equal share of colour lines).
    """
    teams = build_teams()
    crawler = SimulatedCrawler(teams, seed=seed)
    fixture_list = fixtures if fixtures is not None else FIXTURES
    use_script = fixtures is None
    matches = [
        crawler.simulator.simulate(
            home, away, date, kick_off,
            scripted=SCRIPTED_EVENTS.get(index, ()) if use_script else ())
        for index, (home, away, date, kick_off) in enumerate(fixture_list)
    ]

    event_total = sum(len(match.events) for match in matches)
    color_budget = max(0, total_narrations - event_total)
    base, remainder = divmod(color_budget, len(matches)) \
        if matches else (0, 0)

    crawled = []
    for index, match in enumerate(matches):
        extra = base + (1 if index < remainder else 0)
        crawled.append(crawler.render(
            match, total_narrations=len(match.events) + extra))
    return Corpus(teams=teams, matches=matches, crawled=crawled, seed=seed)


def corpus_statistics(corpus: Corpus) -> Dict[str, int]:
    """Headline numbers to compare against the paper's §4."""
    kinds: Dict[str, int] = {}
    for match in corpus.matches:
        for event in match.events:
            kinds[event.kind] = kinds.get(event.kind, 0) + 1
    return {
        "matches": len(corpus.matches),
        "narrations": corpus.narration_count,
        "events": corpus.event_count,
        **{f"kind_{kind}": count for kind, count in sorted(kinds.items())},
    }
