"""Ground-truth domain model for simulated soccer data.

These dataclasses are the *simulator's* truth — what actually happened
in a generated match.  The rest of the pipeline never reads them
directly: the crawler renders them into the same artifacts the paper's
crawler produced (basic info + free-text narrations), and the IE module
has to recover the structure from the text.  The evaluation harness
uses the ground truth only to compute gold relevance judgments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["EventKind", "Position", "Player", "Team", "GroundTruthEvent",
           "Match", "POSITION_GROUPS"]


class EventKind:
    """Ground-truth event kinds produced by the simulator.

    Values equal the ontology class local names so population is a
    direct mapping.
    """

    GOAL = "Goal"
    OWN_GOAL = "OwnGoal"
    PENALTY_GOAL = "PenaltyGoal"
    MISSED_GOAL = "MissedGoal"
    SAVE = "Save"
    PASS = "Pass"
    LONG_PASS = "LongPass"
    CROSS = "Cross"
    SHOOT = "Shoot"
    FOUL = "Foul"
    HANDBALL = "Handball"
    OFFSIDE = "Offside"
    YELLOW_CARD = "YellowCard"
    RED_CARD = "RedCard"
    CORNER = "Corner"
    FREE_KICK = "FreeKick"
    PENALTY = "Penalty"
    SUBSTITUTION = "Substitution"
    INJURY = "Injury"
    TACKLE = "Tackle"
    DRIBBLE = "Dribble"
    CLEARANCE = "Clearance"
    INTERCEPTION = "Interception"
    KICK_OFF = "KickOff"
    HALF_TIME = "HalfTime"
    FULL_TIME = "FullTime"

    ALL = (GOAL, OWN_GOAL, PENALTY_GOAL, MISSED_GOAL, SAVE, PASS, LONG_PASS,
           CROSS, SHOOT, FOUL, HANDBALL, OFFSIDE, YELLOW_CARD, RED_CARD,
           CORNER, FREE_KICK, PENALTY, SUBSTITUTION, INJURY, TACKLE,
           DRIBBLE, CLEARANCE, INTERCEPTION, KICK_OFF, HALF_TIME, FULL_TIME)


class Position:
    """Player position constants = ontology class local names."""

    GOALKEEPER = "Goalkeeper"
    LEFT_BACK = "LeftBack"
    RIGHT_BACK = "RightBack"
    CENTRE_BACK = "CentreBack"
    SWEEPER = "Sweeper"
    DEFENSIVE_MIDFIELDER = "DefensiveMidfielder"
    CENTRAL_MIDFIELDER = "CentralMidfielder"
    ATTACKING_MIDFIELDER = "AttackingMidfielder"
    LEFT_WINGER = "LeftWinger"
    RIGHT_WINGER = "RightWinger"
    CENTRE_FORWARD = "CentreForward"
    STRIKER = "Striker"


#: position → broad group class local name (Fig. 2 hierarchy).
POSITION_GROUPS: Dict[str, str] = {
    Position.GOALKEEPER: "Goalkeeper",
    Position.LEFT_BACK: "DefencePlayer",
    Position.RIGHT_BACK: "DefencePlayer",
    Position.CENTRE_BACK: "DefencePlayer",
    Position.SWEEPER: "DefencePlayer",
    Position.DEFENSIVE_MIDFIELDER: "MidfieldPlayer",
    Position.CENTRAL_MIDFIELDER: "MidfieldPlayer",
    Position.ATTACKING_MIDFIELDER: "MidfieldPlayer",
    Position.LEFT_WINGER: "MidfieldPlayer",
    Position.RIGHT_WINGER: "MidfieldPlayer",
    Position.CENTRE_FORWARD: "ForwardPlayer",
    Position.STRIKER: "ForwardPlayer",
}


@dataclass(frozen=True)
class Player:
    """One squad member."""

    name: str                 # display name as narrations print it
    full_name: str
    position: str             # a Position constant
    shirt_number: int

    @property
    def is_goalkeeper(self) -> bool:
        return self.position == Position.GOALKEEPER

    @property
    def position_group(self) -> str:
        return POSITION_GROUPS[self.position]


@dataclass
class Team:
    """A club with its squad (starters first)."""

    name: str
    city: str
    stadium: str
    country: str
    squad: List[Player] = field(default_factory=list)

    @property
    def starters(self) -> List[Player]:
        return self.squad[:11]

    @property
    def substitutes(self) -> List[Player]:
        return self.squad[11:]

    @property
    def goalkeeper(self) -> Player:
        for player in self.starters:
            if player.is_goalkeeper:
                return player
        raise ValueError(f"team {self.name} has no starting goalkeeper")

    def player_by_name(self, name: str) -> Optional[Player]:
        for player in self.squad:
            if player.name == name or player.full_name == name:
                return player
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Team {self.name} ({len(self.squad)} players)>"


@dataclass
class GroundTruthEvent:
    """What actually happened, per the simulator.

    ``subject``/``object`` are the acting and acted-on players (the
    generic roles of §3.4).  ``extras`` carries kind-specific detail
    (e.g. the pass receiver for assists, the card reason).
    """

    event_id: str
    kind: str                         # an EventKind constant
    minute: int
    team: Optional[str] = None        # acting team name
    subject: Optional[Player] = None
    object: Optional[Player] = None
    object_team: Optional[str] = None
    extras: Dict[str, str] = field(default_factory=dict)

    def involves(self, player_name: str) -> bool:
        """True when the player acts in or suffers this event."""
        return any(p is not None and (p.name == player_name
                                      or p.full_name == player_name)
                   for p in (self.subject, self.object))


@dataclass
class Match:
    """One simulated match with complete ground truth."""

    match_id: str
    home: Team
    away: Team
    date: str                          # ISO yyyy-mm-dd
    kick_off: str                      # "20:45"
    stadium: str
    referee: str
    competition: str
    events: List[GroundTruthEvent] = field(default_factory=list)

    @property
    def teams(self) -> Tuple[Team, Team]:
        return (self.home, self.away)

    def team_by_name(self, name: str) -> Optional[Team]:
        for team in self.teams:
            if team.name == name:
                return team
        return None

    @property
    def home_score(self) -> int:
        return self._score_for(self.home.name)

    @property
    def away_score(self) -> int:
        return self._score_for(self.away.name)

    def _score_for(self, team_name: str) -> int:
        goals = 0
        for event in self.events:
            if event.kind in (EventKind.GOAL, EventKind.PENALTY_GOAL) \
                    and event.team == team_name:
                goals += 1
            elif event.kind == EventKind.OWN_GOAL \
                    and event.object_team is not None \
                    and event.object_team != team_name:
                # an own goal credits the side that did NOT put it in
                goals += 1
        return goals

    def events_of_kind(self, *kinds: str) -> Iterator[GroundTruthEvent]:
        for event in self.events:
            if event.kind in kinds:
                yield event

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Match {self.home.name} {self.home_score}-"
                f"{self.away_score} {self.away.name} ({self.date})>")
