"""Soccer domain: ground-truth model, simulator, narration, crawler.

This package is the substitute for the paper's proprietary UEFA/SporX
crawl (see DESIGN.md §2): a seeded simulator produces matches, a
narration generator renders them as UEFA-style minute-by-minute text,
and :class:`~repro.soccer.crawler.SimulatedCrawler` packages both into
the same artifact the original crawler stored.
"""

from repro.soccer.corpus import (Corpus, DEFAULT_SEED, PAPER_EVENT_COUNT,
                                 PAPER_NARRATION_COUNT, corpus_statistics,
                                 standard_corpus)
from repro.soccer.crawler import (BookingFact, CrawledMatch, GoalFact,
                                  LineupEntry, SimulatedCrawler,
                                  SubstitutionFact)
from repro.soccer.domain import (EventKind, GroundTruthEvent, Match, Player,
                                 Position, POSITION_GROUPS, Team)
from repro.soccer.names import COMPETITION, FIXTURES, REFEREES, build_teams
from repro.soccer.narration import Narration, NarrationGenerator
from repro.soccer.simulator import MatchSimulator

__all__ = [
    "EventKind",
    "Position",
    "POSITION_GROUPS",
    "Player",
    "Team",
    "GroundTruthEvent",
    "Match",
    "build_teams",
    "FIXTURES",
    "REFEREES",
    "COMPETITION",
    "MatchSimulator",
    "Narration",
    "NarrationGenerator",
    "CrawledMatch",
    "LineupEntry",
    "GoalFact",
    "SubstitutionFact",
    "BookingFact",
    "SimulatedCrawler",
    "Corpus",
    "standard_corpus",
    "corpus_statistics",
    "DEFAULT_SEED",
    "PAPER_NARRATION_COUNT",
    "PAPER_EVENT_COUNT",
]
