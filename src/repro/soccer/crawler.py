"""The simulated crawler: produces exactly what the paper's crawler did.

The original system crawled UEFA.com / SporX match pages and stored,
per game (§3.1 step 1):

* *basic information* — teams, line-ups (players with shirt numbers and
  positions), goals, substitutions, bookings, the stadium, referee and
  date; and
* the *minute-by-minute narrations* in free text.

:class:`SimulatedCrawler` renders simulated matches into the same
artifact (:class:`CrawledMatch`).  Nothing downstream of this module
ever sees the simulator's ground truth — the IE module works purely on
the narration text plus the basic info, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.soccer.domain import EventKind, Match, Team
from repro.soccer.narration import Narration, NarrationGenerator
from repro.soccer.simulator import MatchSimulator

__all__ = ["LineupEntry", "GoalFact", "SubstitutionFact", "BookingFact",
           "CrawledMatch", "SimulatedCrawler"]


@dataclass(frozen=True)
class LineupEntry:
    """One player in the crawled line-up sheet."""

    name: str
    full_name: str
    shirt_number: int
    position: str          # ontology position class local name
    starter: bool


@dataclass(frozen=True)
class GoalFact:
    """One goal from the crawled match-facts box.

    ``source_id`` is an opaque provenance key carried through the
    pipeline (it becomes the populated individual's ``hasEventId``);
    the evaluation harness uses it to join index documents back to
    gold relevance judgments.  No pipeline stage interprets it.
    """

    minute: int
    scorer: str
    team: str
    kind: str              # "goal" | "penalty" | "own goal"
    source_id: str = ""


@dataclass(frozen=True)
class SubstitutionFact:
    minute: int
    team: str
    player_in: str
    player_out: str
    source_id: str = ""


@dataclass(frozen=True)
class BookingFact:
    minute: int
    team: str
    player: str
    color: str             # "yellow" | "red"
    source_id: str = ""


@dataclass
class CrawledMatch:
    """Everything the crawler hands to the pipeline for one game."""

    match_id: str
    competition: str
    date: str
    kick_off: str
    stadium: str
    referee: str
    home_team: str
    away_team: str
    home_score: int
    away_score: int
    lineups: Dict[str, List[LineupEntry]] = field(default_factory=dict)
    goals: List[GoalFact] = field(default_factory=list)
    substitutions: List[SubstitutionFact] = field(default_factory=list)
    bookings: List[BookingFact] = field(default_factory=list)
    narrations: List[Narration] = field(default_factory=list)

    @property
    def teams(self) -> Tuple[str, str]:
        return (self.home_team, self.away_team)

    def lineup(self, team: str) -> List[LineupEntry]:
        return self.lineups.get(team, [])

    def validate(self) -> "CrawledMatch":
        """Check the crawl artifact is structurally sound.

        The resilience layer runs this as the ``crawl`` stage before
        ingestion, so a truncated or mangled page fails fast with a
        :class:`~repro.errors.CrawlError` instead of surfacing as a
        confusing downstream extraction or population failure.
        Returns ``self`` so it can run as a pipeline stage.
        """
        from repro.errors import CrawlError
        if not self.match_id:
            raise CrawlError("crawled match has no match_id")
        if not self.home_team or not self.away_team:
            raise CrawlError(
                f"match {self.match_id!r} is missing a team name")
        if self.home_team == self.away_team:
            raise CrawlError(
                f"match {self.match_id!r} has identical teams "
                f"{self.home_team!r}")
        if not self.narrations:
            raise CrawlError(
                f"match {self.match_id!r} has no narrations")
        if min(self.home_score, self.away_score) < 0:
            raise CrawlError(
                f"match {self.match_id!r} has a negative score")
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<CrawledMatch {self.home_team} {self.home_score}-"
                f"{self.away_score} {self.away_team}, "
                f"{len(self.narrations)} narrations>")


class SimulatedCrawler:
    """Generates crawled matches from the simulator.

    ``language`` selects the narration phrasebook: ``"en"`` simulates
    the UEFA.com crawl, ``"tr"`` the SporX crawl (paper §3.1 names
    both sources).
    """

    def __init__(self, teams: Dict[str, Team], seed: int = 0,
                 language: str = "en") -> None:
        self.simulator = MatchSimulator(teams, seed=seed)
        self.language = language
        if language == "en":
            self.narrator = NarrationGenerator(seed=seed + 1)
        elif language == "tr":
            from repro.soccer.turkish import (TURKISH_COLOR_TEMPLATES,
                                              TURKISH_TEMPLATES)
            self.narrator = NarrationGenerator(
                seed=seed + 1, templates=TURKISH_TEMPLATES,
                color_templates=TURKISH_COLOR_TEMPLATES)
        else:
            raise ValueError(f"unsupported narration language "
                             f"{language!r} (expected 'en' or 'tr')")

    def crawl_match(self, home: str, away: str, date: str,
                    kick_off: str = "20:45",
                    total_narrations: Optional[int] = None) -> CrawledMatch:
        """Simulate one game and render the crawl artifact for it."""
        match = self.simulator.simulate(home, away, date, kick_off)
        return self.render(match, total_narrations)

    def render(self, match: Match,
               total_narrations: Optional[int] = None) -> CrawledMatch:
        """Render an already-simulated match into a crawl artifact."""
        narrations = self.narrator.narrate_match(match, total_narrations)
        crawled = CrawledMatch(
            match_id=match.match_id,
            competition=match.competition,
            date=match.date,
            kick_off=match.kick_off,
            stadium=match.stadium,
            referee=match.referee,
            home_team=match.home.name,
            away_team=match.away.name,
            home_score=match.home_score,
            away_score=match.away_score,
            narrations=narrations,
        )
        for team in match.teams:
            crawled.lineups[team.name] = [
                LineupEntry(name=player.name, full_name=player.full_name,
                            shirt_number=player.shirt_number,
                            position=player.position,
                            starter=index < 11)
                for index, player in enumerate(team.squad)
            ]
        for event in match.events:
            if event.kind in (EventKind.GOAL, EventKind.PENALTY_GOAL,
                              EventKind.OWN_GOAL):
                kind = {EventKind.GOAL: "goal",
                        EventKind.PENALTY_GOAL: "penalty",
                        EventKind.OWN_GOAL: "own goal"}[event.kind]
                crawled.goals.append(GoalFact(
                    minute=event.minute,
                    scorer=event.subject.name if event.subject else "",
                    team=event.team or "", kind=kind,
                    source_id=event.event_id))
            elif event.kind == EventKind.SUBSTITUTION:
                crawled.substitutions.append(SubstitutionFact(
                    minute=event.minute, team=event.team or "",
                    player_in=event.subject.name if event.subject else "",
                    player_out=event.object.name if event.object else "",
                    source_id=event.event_id))
            elif event.kind in (EventKind.YELLOW_CARD, EventKind.RED_CARD):
                color = ("yellow" if event.kind == EventKind.YELLOW_CARD
                         else "red")
                crawled.bookings.append(BookingFact(
                    minute=event.minute, team=event.team or "",
                    player=event.subject.name if event.subject else "",
                    color=color, source_id=event.event_id))
        return crawled
