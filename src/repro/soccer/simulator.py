"""Seeded match simulator — the substitute for the UEFA/SporX crawl.

The paper's experiments run over proprietary crawled match pages we
cannot fetch; this simulator generates matches whose *shape* matches
them: realistic per-match counts of goals, misses, saves, fouls,
cards, offsides, corners, substitutions, passes and so on, with the
roles (subject/object players and teams) the information extractor is
expected to recover from the narrations.

Everything is driven by one :class:`random.Random` instance, so a seed
fully determines the corpus (see :mod:`repro.soccer.corpus` for the
standard 10-match corpus).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.soccer.domain import (EventKind, GroundTruthEvent, Match, Player,
                                 Team)
from repro.soccer.names import COMPETITION, REFEREES

__all__ = ["ScriptedEvent", "MatchSimulator"]


class ScriptedEvent:
    """A deterministic event injected into a simulated match.

    The paper's evaluation queries name specific occurrences (Messi's
    goals, Alex's yellow cards, Daniel fouling Florent) that its real
    crawl happened to contain.  A purely random simulation cannot
    guarantee them, so each fixture may carry a short script of events
    that must occur; everything else stays random.  See
    :data:`repro.soccer.corpus.SCRIPTED_EVENTS`.
    """

    def __init__(self, kind: str, minute: int, team: str,
                 subject: str | None = None,
                 object_: str | None = None,
                 object_team: str | None = None) -> None:
        self.kind = kind
        self.minute = minute
        self.team = team
        self.subject = subject
        self.object = object_
        self.object_team = object_team

#: relative likelihood of scoring / shooting by position group
_SHOT_WEIGHTS = {
    "ForwardPlayer": 10.0,
    "MidfieldPlayer": 4.0,
    "DefencePlayer": 1.5,
    "Goalkeeper": 0.0,
}

_FOUL_WEIGHTS = {
    "ForwardPlayer": 2.0,
    "MidfieldPlayer": 4.0,
    "DefencePlayer": 5.0,
    "Goalkeeper": 0.3,
}


class MatchSimulator:
    """Generates :class:`~repro.soccer.domain.Match` instances."""

    def __init__(self, teams: Dict[str, Team], seed: int = 0) -> None:
        self.teams = teams
        self._rng = random.Random(seed)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def simulate(self, home_name: str, away_name: str, date: str,
                 kick_off: str = "20:45",
                 scripted: Sequence[ScriptedEvent] = ()) -> Match:
        """Simulate one match between two known teams.

        ``scripted`` events are injected verbatim (resolved against the
        squads) in addition to the random ones.
        """
        home = self.teams[home_name]
        away = self.teams[away_name]
        match_id = (f"{home_name}_{away_name}_{date}"
                    .replace(" ", "_").replace("-", "_"))
        match = Match(
            match_id=match_id,
            home=home, away=away, date=date, kick_off=kick_off,
            stadium=home.stadium,
            referee=self._rng.choice(REFEREES),
            competition=COMPETITION,
        )
        self._event_counter = 0
        events: List[GroundTruthEvent] = []
        events.append(self._phase(match, EventKind.KICK_OFF, 1))
        for team, other in ((home, away), (away, home)):
            events.extend(self._goals(match, team, other))
            events.extend(self._misses(match, team))
            events.extend(self._saves(match, team, other))
            events.extend(self._shoots(match, team))
            events.extend(self._fouls_and_cards(match, team, other))
            events.extend(self._offsides(match, team))
            events.extend(self._set_pieces(match, team))
            events.extend(self._substitutions(match, team))
            events.extend(self._injuries(match, team))
            events.extend(self._duels(match, team, other))
            events.extend(self._passes(match, team))
        for spec in scripted:
            events.append(self._scripted(match, spec))
        events.append(self._phase(match, EventKind.HALF_TIME, 46))
        events.append(self._phase(match, EventKind.FULL_TIME, 90))
        events.sort(key=lambda e: (e.minute, e.event_id))
        match.events = events
        return match

    def _scripted(self, match: Match,
                  spec: ScriptedEvent) -> GroundTruthEvent:
        team = self.teams[spec.team]
        other = match.away if team is match.home else match.home

        def resolve(name: str | None) -> Optional[Player]:
            if name is None:
                return None
            for candidate in (match.home, match.away):
                player = candidate.player_by_name(name)
                if player is not None:
                    return player
            raise KeyError(f"scripted player {name!r} not in either squad")

        object_team = (self.teams[spec.object_team]
                       if spec.object_team else other)
        return self._event(match, spec.kind, spec.minute, team=team,
                           subject=resolve(spec.subject),
                           object_=resolve(spec.object),
                           object_team=object_team)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _next_id(self, match: Match) -> str:
        self._event_counter += 1
        return f"{match.match_id}_e{self._event_counter:03d}"

    def _minute(self, low: int = 2, high: int = 90) -> int:
        return self._rng.randint(low, high)

    def _weighted_player(self, team: Team,
                         weights: Dict[str, float],
                         exclude: Sequence[Player] = ()) -> Player:
        candidates = [p for p in team.starters if p not in exclude]
        player_weights = [weights.get(p.position_group, 1.0)
                          for p in candidates]
        return self._rng.choices(candidates, weights=player_weights, k=1)[0]

    def _field_player(self, team: Team,
                      exclude: Sequence[Player] = ()) -> Player:
        candidates = [p for p in team.starters
                      if not p.is_goalkeeper and p not in exclude]
        return self._rng.choice(candidates)

    def _event(self, match: Match, kind: str, minute: int,
               team: Optional[Team] = None,
               subject: Optional[Player] = None,
               object_: Optional[Player] = None,
               object_team: Optional[Team] = None,
               **extras: str) -> GroundTruthEvent:
        return GroundTruthEvent(
            event_id=self._next_id(match),
            kind=kind, minute=minute,
            team=team.name if team else None,
            subject=subject, object=object_,
            object_team=object_team.name if object_team else None,
            extras=dict(extras),
        )

    def _phase(self, match: Match, kind: str,
               minute: int) -> GroundTruthEvent:
        return self._event(match, kind, minute)

    # ------------------------------------------------------------------
    # event generators
    # ------------------------------------------------------------------

    def _goals(self, match: Match, team: Team,
               other: Team) -> List[GroundTruthEvent]:
        events: List[GroundTruthEvent] = []
        count = self._rng.choices((0, 1, 2, 3),
                                  weights=(20, 37, 30, 13), k=1)[0]
        for _ in range(count):
            minute = self._minute()
            roll = self._rng.random()
            scorer = self._weighted_player(team, _SHOT_WEIGHTS)
            if roll < 0.06:
                # own goal: a defender of `other` puts it into his own net
                own_scorer = self._weighted_player(
                    other, {"DefencePlayer": 5.0, "MidfieldPlayer": 1.0,
                            "ForwardPlayer": 0.2, "Goalkeeper": 0.1})
                events.append(self._event(
                    match, EventKind.OWN_GOAL, minute, team=other,
                    subject=own_scorer, object_team=other))
                continue
            if roll < 0.16:
                events.append(self._event(
                    match, EventKind.PENALTY_GOAL, minute, team=team,
                    subject=scorer, object_team=other))
                continue
            goal = self._event(match, EventKind.GOAL, minute, team=team,
                               subject=scorer, object_team=other)
            events.append(goal)
            if self._rng.random() < 0.7:
                # the assist: a same-minute pass received by the scorer —
                # exactly the situation the Fig. 6 rule recognizes.
                passer = self._field_player(team, exclude=[scorer])
                events.append(self._event(
                    match, EventKind.PASS, minute, team=team,
                    subject=passer, object_=scorer))
        return events

    def _misses(self, match: Match, team: Team) -> List[GroundTruthEvent]:
        count = self._rng.randint(3, 5)
        return [self._event(match, EventKind.MISSED_GOAL, self._minute(),
                            team=team,
                            subject=self._weighted_player(team,
                                                          _SHOT_WEIGHTS))
                for _ in range(count)]

    def _saves(self, match: Match, team: Team,
               other: Team) -> List[GroundTruthEvent]:
        """Saves made by this team's goalkeeper (shots from `other`)."""
        count = self._rng.randint(2, 4)
        keeper = team.goalkeeper
        return [self._event(match, EventKind.SAVE, self._minute(),
                            team=team, subject=keeper,
                            object_=self._weighted_player(other,
                                                          _SHOT_WEIGHTS))
                for _ in range(count)]

    def _shoots(self, match: Match, team: Team) -> List[GroundTruthEvent]:
        count = self._rng.randint(2, 4)
        events = []
        for _ in range(count):
            # generic shots skew less to forwards: long-range efforts
            shooter = self._weighted_player(
                team, {"ForwardPlayer": 4.0, "MidfieldPlayer": 4.0,
                       "DefencePlayer": 2.5, "Goalkeeper": 0.0})
            events.append(self._event(match, EventKind.SHOOT,
                                      self._minute(), team=team,
                                      subject=shooter))
        return events

    def _fouls_and_cards(self, match: Match, team: Team,
                         other: Team) -> List[GroundTruthEvent]:
        events: List[GroundTruthEvent] = []
        for _ in range(self._rng.randint(4, 6)):
            minute = self._minute()
            offender = self._weighted_player(team, _FOUL_WEIGHTS)
            victim = self._field_player(other)
            events.append(self._event(match, EventKind.FOUL, minute,
                                      team=team, subject=offender,
                                      object_=victim,
                                      object_team=other))
            card_roll = self._rng.random()
            if card_roll < 0.30:
                events.append(self._event(
                    match, EventKind.YELLOW_CARD, minute, team=team,
                    subject=offender, reason="foul"))
            elif card_roll < 0.33:
                events.append(self._event(
                    match, EventKind.RED_CARD, minute, team=team,
                    subject=offender, reason="serious foul play"))
        if self._rng.random() < 0.25:
            # an occasional booking for dissent, unattached to a foul
            events.append(self._event(
                match, EventKind.YELLOW_CARD, self._minute(), team=team,
                subject=self._field_player(team), reason="dissent"))
        return events

    def _offsides(self, match: Match, team: Team) -> List[GroundTruthEvent]:
        count = self._rng.randint(1, 3)
        return [self._event(match, EventKind.OFFSIDE, self._minute(),
                            team=team,
                            subject=self._weighted_player(team,
                                                          _SHOT_WEIGHTS))
                for _ in range(count)]

    def _set_pieces(self, match: Match,
                    team: Team) -> List[GroundTruthEvent]:
        events = []
        for _ in range(self._rng.randint(3, 5)):
            taker = self._weighted_player(
                team, {"MidfieldPlayer": 5.0, "ForwardPlayer": 2.0,
                       "DefencePlayer": 1.0, "Goalkeeper": 0.0})
            events.append(self._event(match, EventKind.CORNER,
                                      self._minute(), team=team,
                                      subject=taker))
        for _ in range(self._rng.randint(1, 3)):
            taker = self._weighted_player(
                team, {"MidfieldPlayer": 5.0, "ForwardPlayer": 3.0,
                       "DefencePlayer": 1.0, "Goalkeeper": 0.0})
            events.append(self._event(match, EventKind.FREE_KICK,
                                      self._minute(), team=team,
                                      subject=taker))
        return events

    def _substitutions(self, match: Match,
                       team: Team) -> List[GroundTruthEvent]:
        bench = [p for p in team.substitutes if not p.is_goalkeeper]
        outfield = [p for p in team.starters if not p.is_goalkeeper]
        count = min(self._rng.randint(2, 3), len(bench))
        self._rng.shuffle(bench)
        out_players = self._rng.sample(outfield, count)
        return [self._event(match, EventKind.SUBSTITUTION,
                            self._minute(46, 88), team=team,
                            subject=bench[i], object_=out_players[i])
                for i in range(count)]

    def _injuries(self, match: Match, team: Team) -> List[GroundTruthEvent]:
        if self._rng.random() < 0.45:
            return [self._event(match, EventKind.INJURY, self._minute(),
                                team=team,
                                object_=self._field_player(team))]
        return []

    def _duels(self, match: Match, team: Team,
               other: Team) -> List[GroundTruthEvent]:
        events = []
        for _ in range(self._rng.randint(2, 4)):
            tackler = self._weighted_player(team, _FOUL_WEIGHTS)
            events.append(self._event(match, EventKind.TACKLE,
                                      self._minute(), team=team,
                                      subject=tackler,
                                      object_=self._field_player(other)))
        for _ in range(self._rng.randint(1, 3)):
            dribbler = self._weighted_player(team, _SHOT_WEIGHTS)
            events.append(self._event(match, EventKind.DRIBBLE,
                                      self._minute(), team=team,
                                      subject=dribbler,
                                      object_=self._field_player(other)))
        for _ in range(self._rng.randint(1, 2)):
            events.append(self._event(
                match, EventKind.CLEARANCE, self._minute(), team=team,
                subject=self._weighted_player(
                    team, {"DefencePlayer": 6.0, "MidfieldPlayer": 2.0,
                           "ForwardPlayer": 0.5, "Goalkeeper": 1.0})))
        for _ in range(self._rng.randint(1, 2)):
            events.append(self._event(
                match, EventKind.INTERCEPTION, self._minute(), team=team,
                subject=self._weighted_player(
                    team, {"DefencePlayer": 4.0, "MidfieldPlayer": 4.0,
                           "ForwardPlayer": 1.0, "Goalkeeper": 0.2})))
        return events

    def _passes(self, match: Match, team: Team) -> List[GroundTruthEvent]:
        events = []
        for _ in range(self._rng.randint(5, 8)):
            passer = self._field_player(team)
            receiver = self._field_player(team, exclude=[passer])
            kind_roll = self._rng.random()
            if kind_roll < 0.2:
                kind = EventKind.LONG_PASS
            elif kind_roll < 0.4:
                kind = EventKind.CROSS
            else:
                kind = EventKind.PASS
            events.append(self._event(match, kind, self._minute(),
                                      team=team, subject=passer,
                                      object_=receiver))
        return events
