"""Turkish narration templates — the simulated SporX crawl.

The paper crawls *two* sources: UEFA.com (English) and SporX
(Turkish), and stresses that the template-based IE approach "can be
applied to any domain or any language without using any linguistic
tool" (§3.3) — the original templates were in fact first crafted for
Turkish web-casting text [30].

This module provides the Turkish phrasebook; the matching extraction
templates live in :mod:`repro.extraction.templates_tr`.  Slot
conventions are identical to the English set ({s}=subject, {o}=object,
{t}=team, {ot}=object team, {st}=stadium, {n}=shirt number).

The same deliberate lexical gaps exist: goal lines say "golü attı"
rather than spelling the event type, bookings split between "sarı
kart gördü" and "kartla cezalandırıldı", shots are "şut çekti" /
"deneme".
"""

from __future__ import annotations

from typing import Dict, List

from repro.soccer.domain import EventKind

__all__ = ["TURKISH_TEMPLATES", "TURKISH_COLOR_TEMPLATES"]

TURKISH_TEMPLATES: Dict[str, List[tuple]] = {
    EventKind.GOAL: [
        ("{s} ({t}) golü attı! Muhteşem bir vuruş.", 5),
        ("{s} ({t}) golü attı! Tribünler coştu.", 4),
        ("{s} ({t}) golü attı! Bu sezonki dördüncü golü.", 1),
    ],
    EventKind.PENALTY_GOAL: [
        ("{s} ({t}) penaltıyı gole çevirdi.", 1),
        ("{s} ({t}) penaltı noktasından şaşırmadı.", 1),
    ],
    EventKind.OWN_GOAL: [
        ("{s} ({t}) topu kendi ağlarına gönderdi.", 1),
        ("Talihsiz an: {s} kendi kalesine attı.", 1),
    ],
    EventKind.MISSED_GOAL: [
        ("{s} ({t}) mutlak fırsatı kaçırdı.", 2),
        ("{s} ({t}) topu auta gönderdi.", 2),
        ("{s} ({t}) kafa vuruşunda üstten auta yolladı.", 1),
    ],
    EventKind.SAVE: [
        ("{s} ({t}) müthiş bir kurtarışla {o} şutunu çıkardı.", 3),
        ("{s} ({t}) {o} vuruşunda gole izin vermedi.", 2),
        ("{s} ({t}) topu kontrol etti, {o} üzgün.", 1),
    ],
    EventKind.SHOOT: [
        ("{s} ({t}) uzaklardan şut çekti, savunmaya çarptı.", 2),
        ("{s} ({t}) şansını denedi uzak mesafeden.", 2),
    ],
    EventKind.FOUL: [
        ("{s} rakibi {o} üzerinde faul yaptı.", 3),
        ("{s} ({t}) sert müdahalesiyle {o} oyuncusunu durdurdu.", 2),
        ("Serbest vuruş: {s} rakibi {o} oyuncusunu düşürdü.", 2),
    ],
    EventKind.HANDBALL: [
        ("{s} ({t}) elle oynadı, hakem düdüğü çaldı.", 1),
    ],
    EventKind.OFFSIDE: [
        ("{s} ({t}) ofsayta yakalandı.", 3),
        ("Bayrak kalktı: {s} ofsayt pozisyonunda.", 2),
    ],
    EventKind.YELLOW_CARD: [
        ("{s} ({t}) sarı kart gördü.", 3),
        ("{s} ({t}) sert müdahale sonrası kartla cezalandırıldı.", 3),
    ],
    EventKind.RED_CARD: [
        ("{s} ({t}) kırmızı kartla oyun dışı kaldı!", 2),
        ("{s} ({t}) direkt kırmızı kart gördü.", 2),
    ],
    EventKind.CORNER: [
        ("{s} ({t}) kornere geldi ve ortaladı.", 2),
        ("{s} ({t}) korner vuruşunu kullandı.", 2),
    ],
    EventKind.FREE_KICK: [
        ("{s} ({t}) serbest vuruşu kullandı, baraja çarptı.", 1),
        ("{s} ({t}) frikiği ceza sahasına gönderdi.", 1),
    ],
    EventKind.PENALTY: [
        ("Penaltı {t} lehine! Topun başında {s} var.", 1),
    ],
    EventKind.SUBSTITUTION: [
        ("{t} oyuncu değişikliği: {s} oyuna girdi, {o} çıktı.", 3),
        ("{o} yerini {s} oyuncusuna bıraktı.", 2),
    ],
    EventKind.INJURY: [
        ("{o} ({t}) sakatlandı, sağlık ekibi sahada.", 2),
        ("Endişeli anlar: {o} yerde kaldı.", 1),
    ],
    EventKind.TACKLE: [
        ("{s} ({t}) mükemmel bir müdahaleyle {o} elinden "
         "topu aldı.", 2),
    ],
    EventKind.DRIBBLE: [
        ("{s} ({t}) çalımlarıyla {o} oyuncusunu geçti.", 2),
    ],
    EventKind.CLEARANCE: [
        ("{s} ({t}) tehlikeyi uzaklaştırdı.", 2),
    ],
    EventKind.INTERCEPTION: [
        ("{s} ({t}) pası okudu ve araya girdi.", 2),
    ],
    EventKind.PASS: [
        ("{s} güzel bir pasla {o} oyuncusunu buldu.", 3),
        ("{s} topu {o} oyuncusuna aktardı.", 2),
    ],
    EventKind.LONG_PASS: [
        ("{s} uzun topla {o} oyuncusunu aradı.", 2),
    ],
    EventKind.CROSS: [
        ("{s} ortasını {o} için yaptı.", 2),
    ],
    EventKind.KICK_OFF: [
        ("{st} stadında karşılaşma başladı.", 1),
    ],
    EventKind.HALF_TIME: [
        ("Hakem ilk yarıyı bitiren düdüğü çaldı.", 1),
    ],
    EventKind.FULL_TIME: [
        ("{st} stadında maç sona erdi.", 1),
    ],
}

TURKISH_COLOR_TEMPLATES: List[str] = [
    "{p} topu istiyor, sol kanatta boş durumda.",
    "{t} topa sahip olmakta zorlanıyor.",
    "Tempo son dakikalarda düştü.",
    "Her iki takım da gol arıyor ama skor değişmiyor.",
    "{st} tribünleri takımlarını destekliyor.",
    "{t} savunmada güvenli oynuyor.",
    "{p} ve {q} orta sahada mücadele ediyor.",
    "Dördüncü hakem iki dakika uzatma gösterdi.",
    "Ne pozisyon ama! Top bir türlü gol çizgisini geçmiyor.",
    "{t} oyunu rakip yarı alana yıkmış durumda.",
]
