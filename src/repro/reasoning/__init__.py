"""Reasoning services: classification, realization, consistency, rules.

This package replaces the Pellet + Jena stack of the original system
(§3.5) with from-scratch implementations of exactly the services the
paper exercises.  The main entry point is
:class:`~repro.reasoning.reasoner.Reasoner`.
"""

from repro.reasoning.consistency import (ConsistencyChecker, Violation,
                                         check_consistency)
from repro.reasoning.realization import Realizer, realize
from repro.reasoning.reasoner import InferenceResult, Reasoner, schema_rules
from repro.reasoning.taxonomy import Taxonomy

__all__ = [
    "Taxonomy",
    "Realizer",
    "realize",
    "ConsistencyChecker",
    "Violation",
    "check_consistency",
    "Reasoner",
    "InferenceResult",
    "schema_rules",
]
