"""Realization: inferring the most complete type set for individuals.

Covers the inference services the paper quotes from Pellet (§3.5):

* **type closure** — asserted types are expanded along the subclass
  hierarchy (a ``LeftBack`` is a ``DefencePlayer`` is a ``Player`` …),
  the inference behind Q-10's "defence players";
* **property closure** — asserted property values are propagated to all
  super-properties (``scorerPlayer`` implies ``subjectPlayer``;
  ``actorOfRedCard`` implies ``actorOfNegativeMove``), the inference
  behind Q-7;
* **domain/range typing** — "we could infer the type of an individual
  if it is the value of a property whose range is restricted to a
  certain class" (§3.5), plus the symmetric domain inference;
* **hasValue / someValuesFrom entailment** of restriction classes;
* **inverse-property completion** (``hasPlayer`` ↔ ``playsFor``).

The pass iterates to a fixpoint because each kind of inference can
enable another (a range-typed goalkeeper gains ``Player`` by type
closure, which may satisfy another restriction, …).

Two fixpoint strategies are available.  :meth:`Realizer.realize_naive`
re-expands *every* individual each sweep until a sweep adds nothing.
:meth:`Realizer.realize` (the default) keeps a **dirty-individual
worklist**: an individual is re-expanded only when another expansion
changed its types or properties, when its own expansion fed an earlier
stage of itself (an unclosed late type add or a self-loop inverse), or
— the one cross-individual dependency, used by ``someValuesFrom``
recognition — when the types of an individual it points at changed.  Both sweep in ABox insertion order and apply the
same mutations, so the resulting models (including the append order of
every property-value list) are identical; the parity suite holds them
to it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.rdf.term import URIRef
from repro.ontology.model import (Individual, Ontology, PropertyKind,
                                  RestrictionKind)
from repro.reasoning.taxonomy import Taxonomy

__all__ = ["Realizer", "realize"]


class Realizer:
    """Stateful realization pass over one ABox."""

    def __init__(self, ontology: Ontology,
                 taxonomy: Taxonomy | None = None) -> None:
        self._ontology = ontology
        self._taxonomy = taxonomy or Taxonomy(ontology)
        #: properties whose values feed someValuesFrom recognition —
        #: the only way one individual's expansion reads another's
        #: types, hence the only cross-individual dirtiness edge.
        self._svf_properties = {
            restriction.on_property
            for restriction in ontology.restrictions()
            if restriction.kind == RestrictionKind.SOME_VALUES_FROM}
        #: diagnostics of the most recent realize()/realize_naive().
        self.last_stats: Dict[str, int] = {}
        #: set by expansion stages that feed an earlier stage of the
        #: same individual's expansion (see realize()).
        self._feedback = False

    def realize(self, abox: Ontology) -> int:
        """Expand every individual's types and properties in place.

        Returns the total number of new facts (types + property values)
        added.  Idempotent: calling twice adds nothing the second time.

        Delta-driven: after the first sweep only individuals marked
        dirty by a prior expansion are revisited.  Sweeps iterate the
        ABox in insertion order and individuals dirtied at a position
        not yet reached join the *current* sweep — exactly the
        visibility :meth:`realize_naive`'s full re-scan has — so both
        strategies apply identical mutations in identical order.
        """
        individuals = list(abox.individuals())
        order = {individual.uri: position
                 for position, individual in enumerate(individuals)}
        # value-uri -> uris of owners whose someValuesFrom recognition
        # reads that value's types.
        dependents: Dict[URIRef, Set[URIRef]] = {}
        dirty: Set[URIRef] = {individual.uri
                              for individual in individuals}
        added = 0
        sweeps = 0
        expansions = 0
        while dirty:
            sweeps += 1
            carried: Set[URIRef] = set()
            for position, individual in enumerate(individuals):
                if individual.uri not in dirty:
                    continue
                dirty.discard(individual.uri)
                expansions += 1
                changes: Dict[URIRef, bool] = {}
                added += self._expand(abox, individual, changes)
                self._register_dependents(individual, dependents)
                for changed_uri, types_changed in changes.items():
                    if changed_uri == individual.uri \
                            and not self._feedback:
                        # the expansion's own stages run feed-forward
                        # (types → properties → domain/range → inverses
                        # → restrictions), so self-changes are already
                        # fully applied unless a stage fed an earlier
                        # one (unclosed late type add or a self-loop
                        # inverse) — no re-expansion needed.
                        affected = set()
                    else:
                        affected = {changed_uri}
                    if types_changed:
                        affected |= dependents.get(changed_uri, set())
                    for uri in affected:
                        target = dirty if order[uri] > position \
                            else carried
                        target.add(uri)
            dirty |= carried
        self.last_stats = {"mode": "worklist", "added": added,
                           "sweeps": sweeps, "expansions": expansions}
        return added

    def realize_naive(self, abox: Ontology) -> int:
        """The original fixpoint: re-expand every individual per sweep
        until one full sweep adds nothing.  The parity oracle for
        :meth:`realize`."""
        added = 0
        sweeps = 0
        expansions = 0
        changed = True
        while changed:
            sweeps += 1
            changed = False
            for individual in list(abox.individuals()):
                expansions += 1
                delta = self._expand(abox, individual, None)
                if delta:
                    changed = True
                    added += delta
        self.last_stats = {"mode": "naive", "added": added,
                           "sweeps": sweeps, "expansions": expansions}
        return added

    # ------------------------------------------------------------------

    def _register_dependents(self, individual: Individual,
                             dependents: Dict[URIRef, Set[URIRef]]
                             ) -> None:
        for prop_uri in self._svf_properties:
            for value in individual.properties.get(prop_uri, ()):
                if isinstance(value, URIRef):
                    dependents.setdefault(value, set()).add(
                        individual.uri)

    def _expand(self, abox: Ontology, individual: Individual,
                changes: Optional[Dict[URIRef, bool]]) -> int:
        """One expansion of ``individual``; mutates the ABox in place.

        ``changes`` (when given) collects which individuals were
        touched: uri -> True when their *types* changed (the signal the
        someValuesFrom dependents need), False for property-only
        changes.
        """
        self._feedback = False
        added = 0
        added += self._close_types(individual, changes)
        added += self._close_properties(individual, changes)
        added += self._apply_domain_range(abox, individual, changes)
        added += self._apply_inverses(abox, individual, changes)
        added += self._apply_restrictions(abox, individual, changes)
        return added

    def _type_feedback(self, individual: Individual,
                       type_uri: URIRef) -> None:
        """A type added after :meth:`_close_types` ran feeds back into
        the expansion only if its superclass closure is incomplete."""
        if not self._taxonomy.superclasses(type_uri) <= individual.types:
            self._feedback = True

    @staticmethod
    def _note(changes: Optional[Dict[URIRef, bool]], uri: URIRef,
              types_changed: bool) -> None:
        if changes is not None:
            changes[uri] = changes.get(uri, False) or types_changed

    def _close_types(self, individual: Individual,
                     changes: Optional[Dict[URIRef, bool]]) -> int:
        inferred: Set[URIRef] = set()
        for type_uri in individual.types:
            if self._ontology.has_class(type_uri):
                inferred |= self._taxonomy.superclasses(type_uri)
        new_types = inferred - individual.types
        individual.types |= new_types
        if new_types:
            self._note(changes, individual.uri, True)
        return len(new_types)

    def _close_properties(self, individual: Individual,
                          changes: Optional[Dict[URIRef, bool]]) -> int:
        added = 0
        for prop_uri in list(individual.properties):
            if not self._ontology.has_property(prop_uri):
                continue
            supers = self._taxonomy.superproperties(prop_uri)
            if not supers:
                continue
            for value in list(individual.properties[prop_uri]):
                for super_uri in supers:
                    existing = individual.properties.setdefault(super_uri, [])
                    if value not in existing:
                        existing.append(value)
                        added += 1
        if added:
            self._note(changes, individual.uri, False)
        return added

    def _apply_domain_range(self, abox: Ontology, individual: Individual,
                            changes: Optional[Dict[URIRef, bool]]) -> int:
        added = 0
        for prop_uri, values in list(individual.properties.items()):
            if not self._ontology.has_property(prop_uri):
                continue
            prop = self._ontology.get_property(prop_uri)
            if prop.domain is not None and prop.domain not in individual.types:
                individual.types.add(prop.domain)
                self._type_feedback(individual, prop.domain)
                self._note(changes, individual.uri, True)
                added += 1
            if prop.kind != PropertyKind.OBJECT or prop.range is None:
                continue
            for value in values:
                if isinstance(value, URIRef) and abox.has_individual(value):
                    target = abox.individual(value)
                    if prop.range not in target.types:
                        target.types.add(prop.range)
                        if target.uri == individual.uri:
                            self._type_feedback(target, prop.range)
                        self._note(changes, target.uri, True)
                        added += 1
        return added

    def _apply_inverses(self, abox: Ontology, individual: Individual,
                        changes: Optional[Dict[URIRef, bool]]) -> int:
        added = 0
        for prop_uri, values in list(individual.properties.items()):
            if not self._ontology.has_property(prop_uri):
                continue
            inverse = self._ontology.get_property(prop_uri).inverse_of
            if inverse is None:
                continue
            for value in values:
                if isinstance(value, URIRef) and abox.has_individual(value):
                    target = abox.individual(value)
                    existing = target.properties.setdefault(inverse, [])
                    if individual.uri not in existing:
                        existing.append(individual.uri)
                        if target.uri == individual.uri:
                            self._feedback = True
                        self._note(changes, target.uri, False)
                        added += 1
        # also run the declared inverse in the other direction:
        # q inverseOf p means p(x,y) → q(y,x) and q(x,y) → p(y,x).
        for prop in self._ontology.properties():
            if prop.inverse_of is None:
                continue
            for value in list(individual.properties.get(prop.inverse_of, [])):
                if isinstance(value, URIRef) and abox.has_individual(value):
                    target = abox.individual(value)
                    existing = target.properties.setdefault(prop.uri, [])
                    if individual.uri not in existing:
                        existing.append(individual.uri)
                        if target.uri == individual.uri:
                            self._feedback = True
                        self._note(changes, target.uri, False)
                        added += 1
        return added

    def _apply_restrictions(self, abox: Ontology, individual: Individual,
                            changes: Optional[Dict[URIRef, bool]]) -> int:
        """Entail restriction membership (hasValue / someValuesFrom).

        When class C is restricted as ``C ⊑ p hasValue v`` the OWL
        semantics also allow the converse recognition used here: any
        individual with ``p = v`` asserted is recognized as a C (the
        restriction acts as a defined class).  Likewise for
        ``someValuesFrom`` when a value of the filler class is present.
        """
        added = 0
        for restriction in self._ontology.restrictions():
            if restriction.on_class in individual.types:
                continue
            values = individual.properties.get(restriction.on_property)
            if not values:
                continue
            if restriction.kind == RestrictionKind.HAS_VALUE:
                if restriction.filler in values:
                    individual.types.add(restriction.on_class)
                    self._type_feedback(individual, restriction.on_class)
                    self._note(changes, individual.uri, True)
                    added += 1
            elif restriction.kind == RestrictionKind.SOME_VALUES_FROM:
                filler = restriction.filler
                for value in values:
                    if (isinstance(value, URIRef)
                            and abox.has_individual(value)
                            and any(self._taxonomy.is_subclass_of(t, filler)
                                    for t in abox.individual(value).types)):
                        individual.types.add(restriction.on_class)
                        self._type_feedback(individual,
                                            restriction.on_class)
                        self._note(changes, individual.uri, True)
                        added += 1
                        break
        return added


def realize(abox: Ontology, ontology: Ontology | None = None,
            taxonomy: Taxonomy | None = None) -> int:
    """Convenience wrapper: realize ``abox`` against its (shared) TBox."""
    tbox = ontology or abox
    return Realizer(tbox, taxonomy).realize(abox)
