"""Realization: inferring the most complete type set for individuals.

Covers the inference services the paper quotes from Pellet (§3.5):

* **type closure** — asserted types are expanded along the subclass
  hierarchy (a ``LeftBack`` is a ``DefencePlayer`` is a ``Player`` …),
  the inference behind Q-10's "defence players";
* **property closure** — asserted property values are propagated to all
  super-properties (``scorerPlayer`` implies ``subjectPlayer``;
  ``actorOfRedCard`` implies ``actorOfNegativeMove``), the inference
  behind Q-7;
* **domain/range typing** — "we could infer the type of an individual
  if it is the value of a property whose range is restricted to a
  certain class" (§3.5), plus the symmetric domain inference;
* **hasValue / someValuesFrom entailment** of restriction classes;
* **inverse-property completion** (``hasPlayer`` ↔ ``playsFor``).

The pass iterates to a fixpoint because each kind of inference can
enable another (a range-typed goalkeeper gains ``Player`` by type
closure, which may satisfy another restriction, …).
"""

from __future__ import annotations

from typing import Set

from repro.rdf.term import URIRef
from repro.ontology.model import Individual, Ontology, PropertyKind
from repro.reasoning.taxonomy import Taxonomy

__all__ = ["Realizer", "realize"]


class Realizer:
    """Stateful realization pass over one ABox."""

    def __init__(self, ontology: Ontology,
                 taxonomy: Taxonomy | None = None) -> None:
        self._ontology = ontology
        self._taxonomy = taxonomy or Taxonomy(ontology)

    def realize(self, abox: Ontology) -> int:
        """Expand every individual's types and properties in place.

        Returns the total number of new facts (types + property values)
        added.  Idempotent: calling twice adds nothing the second time.
        """
        added = 0
        changed = True
        while changed:
            changed = False
            for individual in list(abox.individuals()):
                delta = self._expand(abox, individual)
                if delta:
                    changed = True
                    added += delta
        return added

    # ------------------------------------------------------------------

    def _expand(self, abox: Ontology, individual: Individual) -> int:
        added = 0
        added += self._close_types(individual)
        added += self._close_properties(individual)
        added += self._apply_domain_range(abox, individual)
        added += self._apply_inverses(abox, individual)
        added += self._apply_restrictions(abox, individual)
        return added

    def _close_types(self, individual: Individual) -> int:
        inferred: Set[URIRef] = set()
        for type_uri in individual.types:
            if self._ontology.has_class(type_uri):
                inferred |= self._taxonomy.superclasses(type_uri)
        new_types = inferred - individual.types
        individual.types |= new_types
        return len(new_types)

    def _close_properties(self, individual: Individual) -> int:
        added = 0
        for prop_uri in list(individual.properties):
            if not self._ontology.has_property(prop_uri):
                continue
            supers = self._taxonomy.superproperties(prop_uri)
            if not supers:
                continue
            for value in list(individual.properties[prop_uri]):
                for super_uri in supers:
                    existing = individual.properties.setdefault(super_uri, [])
                    if value not in existing:
                        existing.append(value)
                        added += 1
        return added

    def _apply_domain_range(self, abox: Ontology,
                            individual: Individual) -> int:
        added = 0
        for prop_uri, values in list(individual.properties.items()):
            if not self._ontology.has_property(prop_uri):
                continue
            prop = self._ontology.get_property(prop_uri)
            if prop.domain is not None and prop.domain not in individual.types:
                individual.types.add(prop.domain)
                added += 1
            if prop.kind != PropertyKind.OBJECT or prop.range is None:
                continue
            for value in values:
                if isinstance(value, URIRef) and abox.has_individual(value):
                    target = abox.individual(value)
                    if prop.range not in target.types:
                        target.types.add(prop.range)
                        added += 1
        return added

    def _apply_inverses(self, abox: Ontology, individual: Individual) -> int:
        added = 0
        for prop_uri, values in list(individual.properties.items()):
            if not self._ontology.has_property(prop_uri):
                continue
            inverse = self._ontology.get_property(prop_uri).inverse_of
            if inverse is None:
                continue
            for value in values:
                if isinstance(value, URIRef) and abox.has_individual(value):
                    target = abox.individual(value)
                    existing = target.properties.setdefault(inverse, [])
                    if individual.uri not in existing:
                        existing.append(individual.uri)
                        added += 1
        # also run the declared inverse in the other direction:
        # q inverseOf p means p(x,y) → q(y,x) and q(x,y) → p(y,x).
        for prop in self._ontology.properties():
            if prop.inverse_of is None:
                continue
            for value in list(individual.properties.get(prop.inverse_of, [])):
                if isinstance(value, URIRef) and abox.has_individual(value):
                    target = abox.individual(value)
                    existing = target.properties.setdefault(prop.uri, [])
                    if individual.uri not in existing:
                        existing.append(individual.uri)
                        added += 1
        return added

    def _apply_restrictions(self, abox: Ontology,
                            individual: Individual) -> int:
        """Entail restriction membership (hasValue / someValuesFrom).

        When class C is restricted as ``C ⊑ p hasValue v`` the OWL
        semantics also allow the converse recognition used here: any
        individual with ``p = v`` asserted is recognized as a C (the
        restriction acts as a defined class).  Likewise for
        ``someValuesFrom`` when a value of the filler class is present.
        """
        added = 0
        from repro.ontology.model import RestrictionKind
        for restriction in self._ontology.restrictions():
            if restriction.on_class in individual.types:
                continue
            values = individual.properties.get(restriction.on_property)
            if not values:
                continue
            if restriction.kind == RestrictionKind.HAS_VALUE:
                if restriction.filler in values:
                    individual.types.add(restriction.on_class)
                    added += 1
            elif restriction.kind == RestrictionKind.SOME_VALUES_FROM:
                filler = restriction.filler
                for value in values:
                    if (isinstance(value, URIRef)
                            and abox.has_individual(value)
                            and any(self._taxonomy.is_subclass_of(t, filler)
                                    for t in abox.individual(value).types)):
                        individual.types.add(restriction.on_class)
                        added += 1
                        break
        return added


def realize(abox: Ontology, ontology: Ontology | None = None,
            taxonomy: Taxonomy | None = None) -> int:
    """Convenience wrapper: realize ``abox`` against its (shared) TBox."""
    tbox = ontology or abox
    return Realizer(tbox, taxonomy).realize(abox)
