"""The reasoner facade — our stand-in for Pellet + Jena (§3.5).

One :class:`Reasoner` bundles every offline inference service the paper
uses, applied to a single match model at a time:

1. **classification / realization** — schema rules generated from the
   ontology (sub-class, sub-property, domain, range) are run together
   with
2. **domain rules** — the Jena-style rule base (assist, conceding team,
   beaten goalkeeper, actor-of assertions), to a joint fixpoint on the
   match's RDF graph;
3. **restriction entailment** — hasValue/someValuesFrom recognition via
   the model-level :class:`~repro.reasoning.realization.Realizer`;
4. **consistency checking** via
   :class:`~repro.reasoning.consistency.ConsistencyChecker`.

Scalability follows the paper's design: the TBox (and the taxonomy,
checker and compiled rules derived from it) is computed once and shared;
each match ABox is inferred independently, so per-match cost does not
grow with corpus size (benchmarked in
``benchmarks/test_scalability_inference.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional

from repro.rdf.graph import Graph
from repro.rdf.namespace import RDF
from repro.rdf.term import URIRef, Variable
from repro.ontology.io import abox_to_graph, individuals_from_graph
from repro.ontology.model import Ontology, PropertyKind
from repro.reasoning.consistency import ConsistencyChecker, Violation
from repro.reasoning.realization import Realizer
from repro.reasoning.rules.ast import Rule, TriplePattern
from repro.reasoning.rules.engine import FiringRecord, RuleEngine
from repro.reasoning.taxonomy import Taxonomy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.observability import Tracer

__all__ = ["InferenceResult", "ReasonStats", "Reasoner", "schema_rules"]

_X = Variable("x")
_Y = Variable("y")


def schema_rules(ontology: Ontology) -> List[Rule]:
    """Compile the ontology's schema into forward rules.

    Produces the RDFS-style entailments (sub-class, sub-property,
    domain, object-property range) as plain rules so classification and
    realization run in the same fixpoint as the domain rules —
    rule-created individuals (e.g. assists) are classified too.
    """
    rules: List[Rule] = []
    for cls in ontology.classes():
        for parent in sorted(cls.parents):
            rules.append(Rule(
                name=f"sc_{cls.uri.local_name}_{parent.local_name}",
                body=[TriplePattern(_X, RDF.type, cls.uri)],
                head=[TriplePattern(_X, RDF.type, parent)],
            ))
    for prop in ontology.properties():
        for parent in sorted(prop.parents):
            rules.append(Rule(
                name=f"sp_{prop.uri.local_name}_{parent.local_name}",
                body=[TriplePattern(_X, prop.uri, _Y)],
                head=[TriplePattern(_X, parent, _Y)],
            ))
        if prop.domain is not None:
            rules.append(Rule(
                name=f"dom_{prop.uri.local_name}",
                body=[TriplePattern(_X, prop.uri, _Y)],
                head=[TriplePattern(_X, RDF.type, prop.domain)],
            ))
        if prop.kind == PropertyKind.OBJECT and prop.range is not None:
            rules.append(Rule(
                name=f"rng_{prop.uri.local_name}",
                body=[TriplePattern(_X, prop.uri, _Y)],
                head=[TriplePattern(_Y, RDF.type, prop.range)],
            ))
        if prop.inverse_of is not None:
            rules.append(Rule(
                name=f"inv_{prop.uri.local_name}",
                body=[TriplePattern(_X, prop.inverse_of, _Y)],
                head=[TriplePattern(_Y, prop.uri, _X)],
            ))
            rules.append(Rule(
                name=f"vni_{prop.uri.local_name}",
                body=[TriplePattern(_X, prop.uri, _Y)],
                head=[TriplePattern(_Y, prop.inverse_of, _X)],
            ))
    return rules


@dataclass
class ReasonStats:
    """Picklable per-model reasoning telemetry.

    Built by :meth:`Reasoner.infer` and shipped inside
    :class:`~repro.core.parallel.MatchPartial` so the pipeline can fold
    reasoning metrics that are complete at any worker count (worker
    process registries are never shipped — partials are the wire
    format, same design as the ingest stage metrics).
    """

    mode: str = "semi_naive"
    #: sub-stage wall clock: rules / realize / consistency.
    seconds: Dict[str, float] = field(default_factory=dict)
    iterations: int = 0
    triples_added: int = 0
    matches_attempted: int = 0
    rules_skipped: int = 0
    delta_total: int = 0
    firings_per_rule: Dict[str, int] = field(default_factory=dict)
    realize_added: int = 0
    realize_sweeps: int = 0
    realize_expansions: int = 0

    @property
    def firings_total(self) -> int:
        return sum(self.firings_per_rule.values())


@dataclass
class InferenceResult:
    """Everything produced by inferring one match model."""

    abox: Ontology
    graph: Graph
    firing: FiringRecord
    violations: List[Violation] = field(default_factory=list)
    stats: ReasonStats = field(default_factory=ReasonStats)

    @property
    def consistent(self) -> bool:
        return not self.violations


class Reasoner:
    """Shared-TBox reasoner applied per match model."""

    def __init__(self, ontology: Ontology,
                 domain_rules: Iterable[Rule] = ()) -> None:
        self.ontology = ontology
        self.taxonomy = Taxonomy(ontology)
        self._realizer = Realizer(ontology, self.taxonomy)
        self._checker = ConsistencyChecker(ontology, self.taxonomy)
        self._engine = RuleEngine(
            list(domain_rules) + schema_rules(ontology))

    def infer(self, abox: Ontology,
              check_consistency: bool = True,
              tracer: "Optional[Tracer]" = None,
              naive: bool = False) -> InferenceResult:
        """Run the full offline inference pass over one match model.

        The input ABox is not modified; a new, fully inferred ABox is
        returned together with the inferred RDF graph (the artifact the
        semantic indexer consumes — the paper's "inferred OWL files").

        ``tracer`` nests the ``reason > rules/realize/consistency``
        spans under the caller's active span (the pipeline passes its
        match-local tracer); without one the process-global tracer is
        used.  ``naive=True`` switches both the rule engine and the
        realizer to their naive fixpoint strategies — the parity oracle
        for the default semi-naive/worklist pair.
        """
        if tracer is None:
            # deferred: repro.core imports this module at package init
            from repro.core.observability import get_observability
            tracer = get_observability().tracer
        stats = ReasonStats(mode="naive" if naive else "semi_naive")
        with tracer.span("reason", model=abox.name, mode=stats.mode):
            graph = abox_to_graph(abox)
            started = time.perf_counter()
            with tracer.span("rules"):
                firing = (self._engine.run_naive(graph) if naive
                          else self._engine.run(graph))
            stats.seconds["rules"] = time.perf_counter() - started
            inferred = individuals_from_graph(graph, self.ontology)
            inferred.name = f"{abox.name}-inferred"
            # restriction entailment needs the model view; it can add
            # types (hasValue / someValuesFrom recognition) not
            # expressible as plain triple rules.
            started = time.perf_counter()
            with tracer.span("realize"):
                if naive:
                    self._realizer.realize_naive(inferred)
                else:
                    self._realizer.realize(inferred)
            stats.seconds["realize"] = time.perf_counter() - started
            started = time.perf_counter()
            if check_consistency:
                with tracer.span("consistency"):
                    violations = self._checker.check(inferred)
            else:
                violations = []
            stats.seconds["consistency"] = time.perf_counter() - started
        stats.iterations = firing.iterations
        stats.triples_added = firing.triples_added
        stats.matches_attempted = firing.matches_attempted
        stats.rules_skipped = firing.rules_skipped
        stats.delta_total = sum(firing.delta_sizes)
        stats.firings_per_rule = dict(firing.firings_per_rule)
        realize_stats = self._realizer.last_stats
        stats.realize_added = realize_stats.get("added", 0)
        stats.realize_sweeps = realize_stats.get("sweeps", 0)
        stats.realize_expansions = realize_stats.get("expansions", 0)
        return InferenceResult(abox=inferred, graph=graph, firing=firing,
                               violations=violations, stats=stats)

    def classify(self, uri: URIRef) -> List[URIRef]:
        """All superclasses of a class (the Fig. 5 service)."""
        return sorted(self.taxonomy.superclasses(uri))

    def check(self, abox: Ontology) -> List[Violation]:
        """Consistency-check an ABox without inferring."""
        return self._checker.check(abox)
