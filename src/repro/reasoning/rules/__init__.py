"""Jena-style forward-chaining rules (parser, builtins, engine).

Entry points:

* :func:`~repro.reasoning.rules.parser.parse_rules` — parse rule text.
* :class:`~repro.reasoning.rules.engine.RuleEngine` — run to fixpoint.
* :func:`~repro.reasoning.rules.rulesets.soccer_rules` — the paper's
  domain rule base, including the Fig. 6 assist rule verbatim.
"""

from repro.reasoning.rules.ast import BuiltinCall, Rule, TriplePattern
from repro.reasoning.rules.engine import FiringRecord, RuleEngine
from repro.reasoning.rules.parser import parse_rule, parse_rules
from repro.reasoning.rules.rulesets import (ASSIST_RULE_TEXT,
                                            SOCCER_RULES_TEXT,
                                            soccer_namespaces, soccer_rules)

__all__ = [
    "Rule",
    "TriplePattern",
    "BuiltinCall",
    "RuleEngine",
    "FiringRecord",
    "parse_rule",
    "parse_rules",
    "soccer_rules",
    "soccer_namespaces",
    "ASSIST_RULE_TEXT",
    "SOCCER_RULES_TEXT",
]
