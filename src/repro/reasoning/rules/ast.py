"""AST for Jena-style forward-chaining rules (paper §3.5, Fig. 6).

A rule has the shape::

    [ruleName:
        (?pass rdf:type pre:Pass)
        (?pass pre:passingPlayer ?passer)
        noValue(?pass rdf:type pre:Assist)
        makeTemp(?tmp)
        -> (?tmp rdf:type pre:Assist)
           (?tmp pre:passingPlayer ?passer)
    ]

The body is an ordered list of triple patterns and builtin calls; the
head is a list of triple templates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple, Union

from repro.rdf.term import Literal, URIRef, Variable

__all__ = ["RuleTerm", "TriplePattern", "BuiltinCall", "BodyAtom", "Rule"]

#: Terms allowed in rule patterns.
RuleTerm = Union[URIRef, Literal, Variable]


@dataclass(frozen=True)
class TriplePattern:
    """A triple pattern in a rule body or head."""

    subject: RuleTerm
    predicate: RuleTerm
    obj: RuleTerm

    def variables(self) -> Tuple[Variable, ...]:
        return tuple(t for t in (self.subject, self.predicate, self.obj)
                     if isinstance(t, Variable))

    def __str__(self) -> str:
        return (f"({_render(self.subject)} {_render(self.predicate)} "
                f"{_render(self.obj)})")


@dataclass(frozen=True)
class BuiltinCall:
    """A builtin invocation, e.g. ``noValue(?x rdf:type pre:Assist)``."""

    name: str
    args: Tuple[RuleTerm, ...]

    def __str__(self) -> str:
        rendered = " ".join(_render(a) for a in self.args)
        return f"{self.name}({rendered})"


BodyAtom = Union[TriplePattern, BuiltinCall]


@dataclass
class Rule:
    """A complete parsed rule."""

    name: str
    body: List[BodyAtom] = field(default_factory=list)
    head: List[TriplePattern] = field(default_factory=list)

    def __str__(self) -> str:
        body = "\n  ".join(str(atom) for atom in self.body)
        head = "\n     ".join(str(atom) for atom in self.head)
        return f"[{self.name}:\n  {body}\n  -> {head}\n]"


def _render(term: RuleTerm) -> str:
    if isinstance(term, Variable):
        return f"?{term}"
    if isinstance(term, Literal):
        return term.n3()
    return f"<{term}>"
