"""Parser for the Jena-style rule syntax.

Accepts the notation of the paper's Fig. 6::

    [assistRule:
        noValue(?pass rdf:type pre:Assist)
        (?pass rdf:type pre:Pass)
        (?pass pre:passingPlayer ?passer)
        makeTemp(?tmp)
        -> (?tmp rdf:type pre:Assist)
    ]

Terms may be variables (``?x``), qualified names (``pre:Pass``,
resolved through a :class:`~repro.rdf.namespace.NamespaceManager`),
full IRIs (``<http://…>``), quoted strings or numbers.  Commas between
arguments are optional, as in Jena.  ``#`` starts a line comment.
"""

from __future__ import annotations

import re
from typing import List

from repro.errors import ParseError
from repro.rdf.namespace import NamespaceManager
from repro.rdf.term import Literal, URIRef, Variable
from repro.reasoning.rules.ast import (BodyAtom, BuiltinCall, Rule, RuleTerm,
                                       TriplePattern)

__all__ = ["parse_rules", "parse_rule"]

_TOKEN = re.compile(r"""
    (?P<COMMENT>\#[^\n]*)
  | (?P<LBRACKET>\[) | (?P<RBRACKET>\])
  | (?P<LPAREN>\()   | (?P<RPAREN>\))
  | (?P<ARROW>->)
  | (?P<IRI><[^<>\s]+>)
  | (?P<VAR>\?[A-Za-z_][A-Za-z0-9_]*)
  | (?P<STRING>"(?:[^"\\]|\\.)*")
  | (?P<NUMBER>[+-]?\d+(?:\.\d+)?)
  | (?P<NAME>[A-Za-z_][A-Za-z0-9_\-]*(?::[A-Za-z_][A-Za-z0-9_\-.]*)?)
  | (?P<COLON>:)
  | (?P<COMMA>,)
  | (?P<WS>\s+)
""", re.VERBOSE)


def _tokenize(text: str) -> List[tuple]:
    tokens = []
    pos = 0
    line = 1
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character {text[pos]!r} in rules",
                             line=line)
        kind = match.lastgroup
        value = match.group()
        if kind not in ("WS", "COMMENT"):
            tokens.append((kind, value, line))
        line += value.count("\n")
        pos = match.end()
    tokens.append(("EOF", "", line))
    return tokens


def parse_rules(text: str,
                namespaces: NamespaceManager | None = None) -> List[Rule]:
    """Parse zero or more ``[name: body -> head]`` rules from ``text``."""
    parser = _RuleParser(_tokenize(text), namespaces)
    return parser.parse_all()


def parse_rule(text: str,
               namespaces: NamespaceManager | None = None) -> Rule:
    """Parse exactly one rule."""
    rules = parse_rules(text, namespaces)
    if len(rules) != 1:
        raise ParseError(f"expected exactly one rule, found {len(rules)}")
    return rules[0]


class _RuleParser:
    def __init__(self, tokens: List[tuple],
                 namespaces: NamespaceManager | None) -> None:
        self._tokens = tokens
        self._pos = 0
        self._ns = namespaces or NamespaceManager()

    @property
    def _current(self) -> tuple:
        return self._tokens[self._pos]

    def _advance(self) -> tuple:
        token = self._current
        if token[0] != "EOF":
            self._pos += 1
        return token

    def _fail(self, message: str) -> ParseError:
        kind, value, line = self._current
        return ParseError(f"{message}, found {value!r}", line=line)

    def _expect(self, kind: str) -> tuple:
        token = self._advance()
        if token[0] != kind:
            self._pos -= 1
            raise self._fail(f"expected {kind}")
        return token

    def parse_all(self) -> List[Rule]:
        rules: List[Rule] = []
        while self._current[0] != "EOF":
            rules.append(self._parse_rule())
        return rules

    def _parse_rule(self) -> Rule:
        self._expect("LBRACKET")
        name_token = self._expect("NAME")
        name = name_token[1]
        if ":" in name:
            # a qualified name would be ambiguous here; rule names are bare
            raise ParseError(f"rule name may not contain ':': {name!r}",
                             line=name_token[2])
        self._expect("COLON")
        body: List[BodyAtom] = []
        while self._current[0] != "ARROW":
            if self._current[0] == "EOF":
                raise self._fail("unterminated rule (missing '->')")
            body.append(self._parse_body_atom())
        self._advance()  # consume ->
        head: List[TriplePattern] = []
        while self._current[0] != "RBRACKET":
            if self._current[0] == "EOF":
                raise self._fail("unterminated rule (missing ']')")
            if self._current[0] != "LPAREN":
                raise self._fail("rule head may contain only triple patterns")
            head.append(self._parse_triple())
        self._advance()  # consume ]
        if not head:
            raise ParseError(f"rule {name!r} has an empty head")
        return Rule(name=name, body=body, head=head)

    def _parse_body_atom(self) -> BodyAtom:
        kind, value, _ = self._current
        if kind == "LPAREN":
            return self._parse_triple()
        if kind == "NAME":
            return self._parse_builtin()
        raise self._fail("expected a triple pattern or builtin call")

    def _parse_triple(self) -> TriplePattern:
        self._expect("LPAREN")
        subject = self._parse_term()
        self._skip_comma()
        predicate = self._parse_term()
        self._skip_comma()
        obj = self._parse_term()
        self._expect("RPAREN")
        return TriplePattern(subject, predicate, obj)

    def _parse_builtin(self) -> BuiltinCall:
        name = self._expect("NAME")[1]
        self._expect("LPAREN")
        args: List[RuleTerm] = []
        while self._current[0] != "RPAREN":
            if self._current[0] == "EOF":
                raise self._fail("unterminated builtin call")
            args.append(self._parse_term())
            self._skip_comma()
        self._advance()  # consume )
        return BuiltinCall(name=name, args=tuple(args))

    def _skip_comma(self) -> None:
        if self._current[0] == "COMMA":
            self._advance()

    def _parse_term(self) -> RuleTerm:
        kind, value, line = self._advance()
        if kind == "VAR":
            return Variable(value[1:])
        if kind == "IRI":
            return URIRef(value[1:-1])
        if kind == "NAME":
            if ":" in value:
                return self._ns.expand(value)
            raise ParseError(f"bare name {value!r} is not a term "
                             f"(use prefix:name or <iri>)", line=line)
        if kind == "STRING":
            unescaped = (value[1:-1].replace('\\"', '"')
                         .replace("\\n", "\n").replace("\\\\", "\\"))
            return Literal(unescaped)
        if kind == "NUMBER":
            if "." in value:
                return Literal(float(value))
            return Literal(int(value))
        self._pos -= 1
        raise self._fail("expected a term")
