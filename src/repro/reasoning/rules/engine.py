"""Forward-chaining rule engine over RDF graphs.

Semantics follow Jena's forward engine for the covered subset: each
rule body is evaluated left-to-right against the working graph; triple
patterns extend candidate bindings via indexed lookups; builtins filter
(or, for ``makeTemp``, extend) bindings.  Satisfied rules instantiate
their head templates and assert the resulting triples.  The engine
iterates all rules until a full pass adds no new triple (fixpoint).

Two evaluation strategies produce that fixpoint:

* :meth:`RuleEngine.run_naive` — the textbook loop: every pass
  re-matches every rule against the entire graph.  Kept as the parity
  oracle.
* :meth:`RuleEngine.run` — **semi-naive (delta-driven) evaluation**,
  the default.  The engine journals every addition (via
  :meth:`~repro.rdf.graph.Graph.journal`) and keeps, per rule, the
  journal position of its previous evaluation.  On later passes a rule
  is evaluated only when its delta window (additions since its last
  turn) contains a triple matching some body atom's constant
  projection; during evaluation, join subtrees that provably cannot
  touch the delta are pruned, and when the delta can only enter at the
  current atom, candidates outside the delta are skipped outright.

The semi-naive strategy is deliberately *order-preserving*: pruning
only ever removes matches that would re-derive existing triples, and
every surviving candidate is still enumerated through the same
``Graph.triples`` calls at the same graph states as the naive engine.
The sequence of asserted triples — not just the final set — is
therefore identical in both modes, which is what keeps downstream
artifacts (ABox individual order, property-value lists, index doc ids)
bit-identical.  A delta-seeded join that re-ordered enumeration would
produce the same *set* of triples in a different insertion order and
silently change every ordered structure built from the graph.

Because ``makeTemp`` mints deterministic nodes (see
:mod:`repro.reasoning.rules.builtins`), generative rules like the
paper's assist rule (Fig. 6) terminate without needing a guard.  The
same determinism, plus the anti-monotonicity of ``noValue`` on
add-only graphs, is what makes the delta skip sound — see the
``noValue`` notes in :mod:`repro.reasoning.rules.builtins`.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import RuleError
from repro.rdf.graph import Graph, Triple
from repro.rdf.term import Node, Variable
from repro.reasoning.rules.ast import (BuiltinCall, Rule, RuleTerm,
                                       TriplePattern)
from repro.reasoning.rules.builtins import (Bindings, BuiltinContext,
                                            evaluate_builtin)

__all__ = ["FiringRecord", "RuleEngine"]


@dataclass
class FiringRecord:
    """Diagnostics for one engine run.

    ``firings_per_rule`` counts *head instantiations that added at
    least one triple* — i.e. distinct bindings that actually produced
    facts.  (An earlier version counted passes-with-any-additions,
    which capped every rule at one firing per pass and under-reported
    multi-match rules like the Fig. 6 assist rule.)

    ``matches_attempted`` counts enumerated candidate bindings and so
    depends on the evaluation mode: the naive engine re-enumerates
    every match each pass, the semi-naive engine only the ones its
    delta analysis could not rule out.  ``triples_added``,
    ``iterations`` and ``firings_per_rule`` are mode-independent (the
    parity suite holds both engines to identical values).
    """

    mode: str = "semi_naive"
    iterations: int = 0
    triples_added: int = 0
    firings_per_rule: Dict[str, int] = field(default_factory=dict)
    matches_attempted: int = 0
    #: semi-naive only: rule evaluations skipped by the delta check.
    rules_skipped: int = 0
    #: semi-naive only: per-pass sum of evaluated delta windows.
    delta_sizes: List[int] = field(default_factory=list)

    def record(self, rule_name: str, added: int, firings: int,
               attempted: int = 0) -> None:
        self.triples_added += added
        self.matches_attempted += attempted
        if firings:
            self.firings_per_rule[rule_name] = (
                self.firings_per_rule.get(rule_name, 0) + firings)


class _DeltaIndex:
    """Constant-projection index over the run's addition journal.

    Supports the two questions semi-naive evaluation asks, both keyed
    by a journal position ``since`` (a rule's previous snapshot):

    * :meth:`possible` — *could* any triple added at or after ``since``
      match this (partially resolved) pattern?  Answers may err on the
      side of True (unresolved positions are wildcards); a False is a
      proof, which is what makes pruning on it sound.
    * :meth:`contains` — is this concrete triple part of the delta?

    Position lists are append-ordered, so "any position >= since"
    is a single look at the last element.
    """

    def __init__(self, journal: List[Triple]) -> None:
        self._journal = journal
        self._processed = 0
        self._position: Dict[Triple, int] = {}
        self._by_p: Dict[Node, List[int]] = {}
        self._by_po: Dict[Tuple[Node, Node], List[int]] = {}
        self._by_sp: Dict[Tuple[Node, Node], List[int]] = {}

    def catch_up(self) -> None:
        journal = self._journal
        for position in range(self._processed, len(journal)):
            subject, predicate, obj = journal[position]
            self._position[journal[position]] = position
            self._by_p.setdefault(predicate, []).append(position)
            self._by_po.setdefault((predicate, obj), []).append(position)
            self._by_sp.setdefault((subject, predicate), []).append(position)
        self._processed = len(journal)

    def possible(self, pattern, since: int) -> bool:
        subject, predicate, obj = pattern
        if predicate is None:
            # no predicate constant to project on; only the journal
            # length can answer, conservatively.
            return self._processed > since
        if subject is not None and obj is not None:
            return self._position.get(pattern, -1) >= since
        if obj is not None:
            positions = self._by_po.get((predicate, obj))
        elif subject is not None:
            positions = self._by_sp.get((subject, predicate))
        else:
            positions = self._by_p.get(predicate)
        return bool(positions) and positions[-1] >= since

    def contains(self, triple: Triple, since: int) -> bool:
        return self._position.get(triple, -1) >= since

    def subjects(self, predicate: Node, obj: Node, since: int):
        """Subjects of delta triples matching ``(?, predicate, obj)``.
        Position lists are append-ordered, so the ``since`` cut is a
        bisect."""
        positions = self._by_po.get((predicate, obj), ())
        start = bisect_left(positions, since)
        return {self._journal[i][0] for i in positions[start:]}

    def objects(self, subject: Node, predicate: Node, since: int):
        """Objects of delta triples matching ``(subject, predicate, ?)``."""
        positions = self._by_sp.get((subject, predicate), ())
        start = bisect_left(positions, since)
        return {self._journal[i][2] for i in positions[start:]}


class RuleEngine:
    """Runs a fixed rule base against graphs.

    One engine instance is reusable across many match models — mirroring
    the paper's design where the same rule base is applied to each game
    independently (§3.5).  ``strict_builtins=True`` turns suspicious
    builtin arguments (e.g. ``lessThan`` over a URIRef) into hard
    :class:`RuleError`\\ s instead of once-per-rule warnings.
    """

    def __init__(self, rules: Iterable[Rule],
                 max_iterations: int = 100,
                 strict_builtins: bool = False) -> None:
        self.rules = list(rules)
        self.max_iterations = max_iterations
        self.strict_builtins = strict_builtins
        for rule in self.rules:
            _validate_rule(rule)

    # ------------------------------------------------------------------
    # evaluation strategies
    # ------------------------------------------------------------------

    def run(self, graph: Graph) -> FiringRecord:
        """Apply all rules to ``graph`` until fixpoint — semi-naive.

        Mutates ``graph`` in place and returns firing statistics.
        Raises :class:`RuleError` if the fixpoint is not reached within
        ``max_iterations`` passes (a runaway generative rule).  The
        resulting graph — including the order its triples were
        asserted in — is identical to :meth:`run_naive`.
        """
        record = FiringRecord(mode="semi_naive")
        context = BuiltinContext(strict=self.strict_builtins)
        with graph.journal() as journal:
            delta = _DeltaIndex(journal)
            last_pos: List[Optional[int]] = [None] * len(self.rules)
            for iteration in range(self.max_iterations):
                record.iterations = iteration + 1
                added_this_pass = 0
                pass_delta = 0
                for rule_index, rule in enumerate(self.rules):
                    if delta._processed != len(journal):
                        delta.catch_up()
                    since = last_pos[rule_index]
                    last_pos[rule_index] = len(journal)
                    if since is not None:
                        window = len(journal) - since
                        if window == 0 or not self._applicable(
                                rule, delta, since):
                            record.rules_skipped += 1
                            continue
                        pass_delta += window
                    body = rule.body
                    if len(body) == 1 and isinstance(body[0],
                                                     TriplePattern):
                        # fast path for one-atom bodies (the bulk of the
                        # compiled schema rules): same matches as the
                        # general DFS, minus the generator machinery.
                        atom = body[0]
                        pattern = (_resolve(atom.subject, {}),
                                   _resolve(atom.predicate, {}),
                                   _resolve(atom.obj, {}))
                        source = (
                            graph.triples(pattern) if since is None
                            else _delta_triples(graph, pattern, delta,
                                                since))
                        matches = []
                        for subject, predicate, obj in source:
                            extended = _extend(atom, {}, subject,
                                               predicate, obj)
                            if extended is not None:
                                matches.append(extended)
                    else:
                        matches = list(self._match_body(
                            rule, graph, 0, {}, context,
                            delta=delta if since is not None else None,
                            since=since or 0,
                            used_delta=since is None))
                    added_this_pass += self._fire(rule, graph, matches,
                                                  record)
                record.delta_sizes.append(pass_delta)
                if added_this_pass == 0:
                    return record
        raise RuleError(
            f"no fixpoint after {self.max_iterations} iterations; "
            f"a rule is generating unbounded facts")

    def run_naive(self, graph: Graph) -> FiringRecord:
        """Apply all rules to ``graph`` until fixpoint — the textbook
        loop re-matching every rule against the whole graph each pass.
        The parity oracle for :meth:`run`."""
        record = FiringRecord(mode="naive")
        context = BuiltinContext(strict=self.strict_builtins)
        for iteration in range(self.max_iterations):
            record.iterations = iteration + 1
            added_this_pass = 0
            for rule in self.rules:
                matches = list(self._match_body(rule, graph, 0, {},
                                                context))
                added_this_pass += self._fire(rule, graph, matches,
                                              record)
            if added_this_pass == 0:
                return record
        raise RuleError(
            f"no fixpoint after {self.max_iterations} iterations; "
            f"a rule is generating unbounded facts")

    # ------------------------------------------------------------------

    def _fire(self, rule: Rule, graph: Graph, matches: List[Bindings],
              record: FiringRecord) -> int:
        """Assert the head for every match; returns triples added.

        Matches were materialized before this runs, so a rule never
        consumes its own new facts within a single pass (pass-level
        semantics, same as Jena).
        """
        added = 0
        firings = 0
        for bindings in matches:
            match_added = 0
            for template in rule.head:
                triple = _instantiate(template, bindings, rule.name)
                if graph.add(triple):
                    match_added += 1
            if match_added:
                firings += 1
                added += match_added
        record.record(rule.name, added, firings, attempted=len(matches))
        return added

    def _applicable(self, rule: Rule, delta: _DeltaIndex,
                    since: int) -> bool:
        """Can this rule's delta window yield a new match at all?

        Every new match must bind at least one body atom to a delta
        triple; if no delta triple fits any atom's constant positions,
        the rule would only re-derive what it already derived.  Bodies
        without triple patterns never see new bindings (builtins are
        deterministic and ``noValue`` can only flip true→false on an
        add-only graph), so they are never re-evaluated.
        """
        for atom in rule.body:
            if isinstance(atom, TriplePattern):
                pattern = (_resolve(atom.subject, {}),
                           _resolve(atom.predicate, {}),
                           _resolve(atom.obj, {}))
                if delta.possible(pattern, since):
                    return True
        return False

    def _match_body(self, rule: Rule, graph: Graph, index: int,
                    bindings: Bindings, context: BuiltinContext,
                    delta: Optional[_DeltaIndex] = None,
                    since: int = 0,
                    used_delta: bool = True) -> Iterator[Bindings]:
        if index == len(rule.body):
            yield dict(bindings)
            return
        atom = rule.body[index]
        if isinstance(atom, BuiltinCall):
            scoped = dict(bindings)
            if evaluate_builtin(atom, scoped, graph, rule.name, context):
                yield from self._match_body(rule, graph, index + 1,
                                            scoped, context, delta,
                                            since, used_delta)
            return
        pattern = (
            _resolve(atom.subject, bindings),
            _resolve(atom.predicate, bindings),
            _resolve(atom.obj, bindings),
        )
        if delta is not None and not used_delta:
            later_possible = any(
                delta.possible((_resolve(later.subject, bindings),
                                _resolve(later.predicate, bindings),
                                _resolve(later.obj, bindings)), since)
                for later in rule.body[index + 1:]
                if isinstance(later, TriplePattern))
            if not later_possible:
                if not delta.possible(pattern, since):
                    # no remaining atom can touch the delta: every
                    # completion re-derives an old match — prune.
                    return
                # the delta can only enter here: enumerate just the
                # delta triples, in graph-enumeration order.
                for subject, predicate, obj in _delta_triples(
                        graph, pattern, delta, since):
                    extended = _extend(atom, bindings, subject,
                                       predicate, obj)
                    if extended is not None:
                        yield from self._match_body(
                            rule, graph, index + 1, extended, context,
                            delta, since, True)
                return
        for subject, predicate, obj in graph.triples(pattern):  # type: ignore[arg-type]
            extended = _extend(atom, bindings, subject, predicate, obj)
            if extended is not None:
                in_delta = (not used_delta and delta is not None
                            and delta.contains(
                                (subject, predicate, obj), since))
                yield from self._match_body(rule, graph, index + 1,
                                            extended, context, delta,
                                            since,
                                            used_delta or in_delta)


def _delta_triples(graph: Graph, pattern, delta: _DeltaIndex,
                   since: int) -> Iterator[Triple]:
    """Delta triples matching ``pattern``, in the exact relative order
    :meth:`Graph.triples` would enumerate them.

    This is the work-saving half of semi-naive evaluation: when every
    surviving candidate must come from the delta, walking the full
    pattern extent and discarding old triples wastes time proportional
    to the *graph*, not the *delta*.  Instead we walk the same
    permutation indexes ``Graph.triples`` walks — same outer dict
    insertion order, same inner set order — but skip whole buckets the
    delta provably cannot touch and filter survivors by delta
    membership.  Because skipping never reorders, the yielded sequence
    is the subsequence of the full enumeration whose members are delta
    triples — exactly what the filter loop produced, at delta cost.

    Patterns without a bound predicate (rare in rule bodies) fall back
    to the full enumeration with a membership filter.
    """
    subject, predicate, obj = pattern
    if predicate is None:
        for triple in graph.triples(pattern):
            if delta.contains(triple, since):
                yield triple
        return
    if subject is not None:
        if obj is not None:
            triple = (subject, predicate, obj)
            if triple in graph and delta.contains(triple, since):
                yield triple
            return
        objects = graph._spo.get(subject, {}).get(predicate)
        if not objects:
            return
        new_objects = delta.objects(subject, predicate, since)
        for candidate in list(objects):
            if candidate in new_objects:
                yield (subject, predicate, candidate)
        return
    by_object = graph._pos.get(predicate)
    if not by_object:
        return
    if obj is not None:
        new_subjects = delta.subjects(predicate, obj, since)
        for subj in list(by_object.get(obj, ())):
            if subj in new_subjects:
                yield (subj, predicate, obj)
        return
    for candidate, subjects in list(by_object.items()):
        if not delta.possible((None, predicate, candidate), since):
            continue
        new_subjects = delta.subjects(predicate, candidate, since)
        for subj in list(subjects):
            if subj in new_subjects:
                yield (subj, predicate, candidate)


def _validate_rule(rule: Rule) -> None:
    """Reject heads with variables that can never be bound."""
    bindable = set()
    for atom in rule.body:
        if isinstance(atom, TriplePattern):
            bindable.update(atom.variables())
        elif atom.name == "makeTemp":
            bindable.update(a for a in atom.args if isinstance(a, Variable))
    for template in rule.head:
        for variable in template.variables():
            if variable not in bindable:
                raise RuleError(
                    f"rule {rule.name!r}: head variable ?{variable} "
                    f"never bound in body")


def _resolve(term: RuleTerm, bindings: Bindings) -> Optional[Node]:
    if isinstance(term, Variable):
        return bindings.get(term)
    return term


def _extend(pattern: TriplePattern, bindings: Bindings,
            subject: Node, predicate: Node, obj: Node
            ) -> Optional[Bindings]:
    extended = dict(bindings)
    for term, value in ((pattern.subject, subject),
                        (pattern.predicate, predicate),
                        (pattern.obj, obj)):
        if isinstance(term, Variable):
            bound = extended.get(term)
            if bound is None:
                extended[term] = value
            elif bound != value:
                return None
    return extended


def _instantiate(template: TriplePattern, bindings: Bindings,
                 rule_name: str):
    def substitute(term: RuleTerm) -> Node:
        if isinstance(term, Variable):
            value = bindings.get(term)
            if value is None:
                raise RuleError(f"rule {rule_name!r}: unbound head "
                                f"variable ?{term}")
            return value
        return term

    return (substitute(template.subject), substitute(template.predicate),
            substitute(template.obj))
