"""Forward-chaining rule engine over RDF graphs.

Semantics follow Jena's forward engine for the covered subset: each
rule body is evaluated left-to-right against the working graph; triple
patterns extend candidate bindings via indexed lookups; builtins filter
(or, for ``makeTemp``, extend) bindings.  Satisfied rules instantiate
their head templates and assert the resulting triples.  The engine
iterates all rules until a full pass adds no new triple (fixpoint).

Because ``makeTemp`` mints deterministic nodes (see
:mod:`repro.reasoning.rules.builtins`), generative rules like the
paper's assist rule (Fig. 6) terminate without needing a guard.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Optional

from repro.errors import RuleError
from repro.rdf.graph import Graph
from repro.rdf.term import Node, Variable
from repro.reasoning.rules.ast import (BuiltinCall, Rule, RuleTerm,
                                       TriplePattern)
from repro.reasoning.rules.builtins import Bindings, evaluate_builtin

__all__ = ["FiringRecord", "RuleEngine"]


@dataclass
class FiringRecord:
    """Diagnostics for one engine run."""

    iterations: int = 0
    triples_added: int = 0
    firings_per_rule: Dict[str, int] = field(default_factory=dict)

    def record(self, rule_name: str, added: int) -> None:
        self.triples_added += added
        if added:
            self.firings_per_rule[rule_name] = (
                self.firings_per_rule.get(rule_name, 0) + 1)


class RuleEngine:
    """Runs a fixed rule base against graphs.

    One engine instance is reusable across many match models — mirroring
    the paper's design where the same rule base is applied to each game
    independently (§3.5).
    """

    def __init__(self, rules: Iterable[Rule],
                 max_iterations: int = 100) -> None:
        self.rules = list(rules)
        self.max_iterations = max_iterations
        for rule in self.rules:
            _validate_rule(rule)

    def run(self, graph: Graph) -> FiringRecord:
        """Apply all rules to ``graph`` until fixpoint.

        Mutates ``graph`` in place and returns firing statistics.
        Raises :class:`RuleError` if the fixpoint is not reached within
        ``max_iterations`` passes (a runaway generative rule).
        """
        record = FiringRecord()
        for iteration in range(self.max_iterations):
            record.iterations = iteration + 1
            added_this_pass = 0
            for rule in self.rules:
                added = self._apply_rule(rule, graph, record)
                added_this_pass += added
            if added_this_pass == 0:
                return record
        raise RuleError(
            f"no fixpoint after {self.max_iterations} iterations; "
            f"a rule is generating unbounded facts")

    # ------------------------------------------------------------------

    def _apply_rule(self, rule: Rule, graph: Graph,
                    record: FiringRecord) -> int:
        added = 0
        # Materialize matches before asserting so a rule never consumes
        # its own new facts within a single pass (pass-level semantics).
        matches = list(self._match_body(rule, graph, 0, {}))
        for bindings in matches:
            for template in rule.head:
                triple = _instantiate(template, bindings, rule.name)
                if graph.add(triple):
                    added += 1
        record.record(rule.name, added)
        return added

    def _match_body(self, rule: Rule, graph: Graph, index: int,
                    bindings: Bindings) -> Iterator[Bindings]:
        if index == len(rule.body):
            yield dict(bindings)
            return
        atom = rule.body[index]
        if isinstance(atom, BuiltinCall):
            scoped = dict(bindings)
            if evaluate_builtin(atom, scoped, graph, rule.name):
                yield from self._match_body(rule, graph, index + 1, scoped)
            return
        pattern = (
            _resolve(atom.subject, bindings),
            _resolve(atom.predicate, bindings),
            _resolve(atom.obj, bindings),
        )
        for subject, predicate, obj in graph.triples(pattern):  # type: ignore[arg-type]
            extended = _extend(atom, bindings, subject, predicate, obj)
            if extended is not None:
                yield from self._match_body(rule, graph, index + 1, extended)


def _validate_rule(rule: Rule) -> None:
    """Reject heads with variables that can never be bound."""
    bindable = set()
    for atom in rule.body:
        if isinstance(atom, TriplePattern):
            bindable.update(atom.variables())
        elif atom.name == "makeTemp":
            bindable.update(a for a in atom.args if isinstance(a, Variable))
    for template in rule.head:
        for variable in template.variables():
            if variable not in bindable:
                raise RuleError(
                    f"rule {rule.name!r}: head variable ?{variable} "
                    f"never bound in body")


def _resolve(term: RuleTerm, bindings: Bindings) -> Optional[Node]:
    if isinstance(term, Variable):
        return bindings.get(term)
    return term


def _extend(pattern: TriplePattern, bindings: Bindings,
            subject: Node, predicate: Node, obj: Node
            ) -> Optional[Bindings]:
    extended = dict(bindings)
    for term, value in ((pattern.subject, subject),
                        (pattern.predicate, predicate),
                        (pattern.obj, obj)):
        if isinstance(term, Variable):
            bound = extended.get(term)
            if bound is None:
                extended[term] = value
            elif bound != value:
                return None
    return extended


def _instantiate(template: TriplePattern, bindings: Bindings,
                 rule_name: str):
    def substitute(term: RuleTerm) -> Node:
        if isinstance(term, Variable):
            value = bindings.get(term)
            if value is None:
                raise RuleError(f"rule {rule_name!r}: unbound head "
                                f"variable ?{term}")
            return value
        return term

    return (substitute(template.subject), substitute(template.predicate),
            substitute(template.obj))
