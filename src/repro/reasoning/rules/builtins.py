"""Builtins for the rule engine.

The subset Jena's docs call "core builtins", limited to the ones the
paper's rule base needs plus the obvious comparison family:

``noValue(s p o)``
    Guard: succeeds when no matching triple exists in the graph under
    the current bindings (unbound variables are wildcards).

``makeTemp(?v)``
    Binds ``?v`` to a fresh blank node.  Unlike Jena's, our temp is
    **deterministic per rule firing**: the label is derived from the
    rule name and the current variable bindings, so re-running a rule
    reproduces the same node and forward chaining reaches a fixpoint
    even without an explicit guard.  This also keeps the corpus builds
    reproducible.

``equal(?x ?y)`` / ``notEqual(?x ?y)``
    Term equality under bindings.

``lessThan`` / ``greaterThan`` / ``le`` / ``ge``
    Numeric comparison of literal values.

``bound(?x)`` / ``unbound(?x)``
    Binding state tests.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Dict, Optional

from repro.errors import RuleError
from repro.rdf.graph import Graph
from repro.rdf.term import BNode, Literal, Node, Variable
from repro.reasoning.rules.ast import BuiltinCall, RuleTerm

__all__ = ["Bindings", "evaluate_builtin", "BUILTIN_NAMES"]

#: Variable bindings accumulated while matching a rule body.
Bindings = Dict[Variable, Node]


def _resolve(term: RuleTerm, bindings: Bindings) -> Optional[Node]:
    if isinstance(term, Variable):
        return bindings.get(term)
    return term


def _builtin_no_value(call: BuiltinCall, bindings: Bindings,
                      graph: Graph, rule_name: str) -> bool:
    if len(call.args) not in (2, 3):
        raise RuleError("noValue expects (s p) or (s p o)")
    subject = _resolve(call.args[0], bindings)
    predicate = _resolve(call.args[1], bindings)
    obj = _resolve(call.args[2], bindings) if len(call.args) == 3 else None
    for _ in graph.triples((subject, predicate, obj)):  # type: ignore[arg-type]
        return False
    return True


def _builtin_make_temp(call: BuiltinCall, bindings: Bindings,
                       graph: Graph, rule_name: str) -> bool:
    if len(call.args) != 1 or not isinstance(call.args[0], Variable):
        raise RuleError("makeTemp expects exactly one variable")
    variable = call.args[0]
    if variable in bindings:
        raise RuleError(f"makeTemp variable ?{variable} is already bound")
    digest_source = rule_name + "|" + "|".join(
        f"{name}={_canonical(value)}"
        for name, value in sorted(bindings.items()))
    digest = hashlib.md5(digest_source.encode("utf-8")).hexdigest()[:16]
    bindings[variable] = BNode(f"tmp_{digest}")
    return True


def _canonical(value: Node) -> str:
    if isinstance(value, Literal):
        return value.n3()
    return str(value)


def _comparison(name: str, test: Callable[[float, float], bool]):
    def builtin(call: BuiltinCall, bindings: Bindings,
                graph: Graph, rule_name: str) -> bool:
        if len(call.args) != 2:
            raise RuleError(f"{name} expects two arguments")
        left = _resolve(call.args[0], bindings)
        right = _resolve(call.args[1], bindings)
        if left is None or right is None:
            return False
        try:
            left_value = float(left.to_python()) \
                if isinstance(left, Literal) else None
            right_value = float(right.to_python()) \
                if isinstance(right, Literal) else None
        except (TypeError, ValueError):
            return False
        if left_value is None or right_value is None:
            return False
        return test(left_value, right_value)

    return builtin


def _builtin_equal(call: BuiltinCall, bindings: Bindings,
                   graph: Graph, rule_name: str) -> bool:
    if len(call.args) != 2:
        raise RuleError("equal expects two arguments")
    left = _resolve(call.args[0], bindings)
    right = _resolve(call.args[1], bindings)
    return left is not None and left == right


def _builtin_not_equal(call: BuiltinCall, bindings: Bindings,
                       graph: Graph, rule_name: str) -> bool:
    if len(call.args) != 2:
        raise RuleError("notEqual expects two arguments")
    left = _resolve(call.args[0], bindings)
    right = _resolve(call.args[1], bindings)
    return left is not None and right is not None and left != right


def _builtin_bound(call: BuiltinCall, bindings: Bindings,
                   graph: Graph, rule_name: str) -> bool:
    return all(not isinstance(a, Variable) or a in bindings
               for a in call.args)


def _builtin_unbound(call: BuiltinCall, bindings: Bindings,
                     graph: Graph, rule_name: str) -> bool:
    return all(isinstance(a, Variable) and a not in bindings
               for a in call.args)


_BUILTINS: Dict[str, Callable] = {
    "noValue": _builtin_no_value,
    "makeTemp": _builtin_make_temp,
    "equal": _builtin_equal,
    "notEqual": _builtin_not_equal,
    "lessThan": _comparison("lessThan", lambda a, b: a < b),
    "greaterThan": _comparison("greaterThan", lambda a, b: a > b),
    "le": _comparison("le", lambda a, b: a <= b),
    "ge": _comparison("ge", lambda a, b: a >= b),
    "bound": _builtin_bound,
    "unbound": _builtin_unbound,
}

BUILTIN_NAMES = frozenset(_BUILTINS)


def evaluate_builtin(call: BuiltinCall, bindings: Bindings, graph: Graph,
                     rule_name: str) -> bool:
    """Run one builtin; may extend ``bindings`` (makeTemp).

    Returns False to prune the current match branch.
    """
    try:
        implementation = _BUILTINS[call.name]
    except KeyError:
        raise RuleError(f"unknown builtin {call.name!r} "
                        f"in rule {rule_name!r}") from None
    return implementation(call, bindings, graph, rule_name)
