"""Builtins for the rule engine.

The subset Jena's docs call "core builtins", limited to the ones the
paper's rule base needs plus the obvious comparison family:

``noValue(s p o)``
    Guard: succeeds when no matching triple exists in the graph under
    the current bindings (unbound variables are wildcards).

    **Semi-naive re-check semantics.** The delta-driven engine
    (:meth:`RuleEngine.run`) does NOT index ``noValue`` guards: a guard
    that held when a rule fired is never revisited for that binding.
    This is sound for the engine's add-only graphs because ``noValue``
    is *anti-monotone* — as the graph grows its truth can only flip
    true→false, so a previously-fired rule's conclusions remain
    derivable facts (the engine implements a fact cache, not truth
    maintenance; Jena's forward engine behaves the same way).  What
    semi-naive must still guarantee — and does, by evaluating guards at
    the same pass-ordered graph states as the naive engine — is that a
    *new* match whose guard has already turned false is not derived.
    Guards are re-evaluated on every candidate match; only triple
    patterns are delta-seeded.

``makeTemp(?v)``
    Binds ``?v`` to a fresh blank node.  Unlike Jena's, our temp is
    **deterministic per rule firing**: the label is derived from the
    rule name and the current variable bindings, so re-running a rule
    reproduces the same node and forward chaining reaches a fixpoint
    even without an explicit guard.  This also keeps the corpus builds
    reproducible.

``equal(?x ?y)`` / ``notEqual(?x ?y)``
    Term equality under bindings.

``lessThan`` / ``greaterThan`` / ``le`` / ``ge``
    Numeric comparison of literal values.  An argument that resolves to
    a URIRef/BNode or a non-numeric literal fails the comparison; since
    that usually means a rule-authoring typo (comparing the resource
    instead of its value) the engine surfaces it — a once-per-(rule,
    builtin) ``RuleWarning`` plus an observability counter by default,
    or a hard :class:`RuleError` under strict mode (see
    :class:`BuiltinContext`).  Unbound (``None``) arguments stay a
    silent False: guards over optional bindings are legitimate.

``bound(?x)`` / ``unbound(?x)``
    Binding state tests.
"""

from __future__ import annotations

import hashlib
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Set, Tuple

from repro.errors import RuleError
from repro.rdf.graph import Graph
from repro.rdf.term import BNode, Literal, Node, Variable
from repro.reasoning.rules.ast import BuiltinCall, RuleTerm

__all__ = ["Bindings", "BuiltinContext", "RuleWarning",
           "evaluate_builtin", "BUILTIN_NAMES"]

#: Variable bindings accumulated while matching a rule body.
Bindings = Dict[Variable, Node]


class RuleWarning(UserWarning):
    """A rule body asked a builtin something it cannot sensibly answer
    (e.g. numeric comparison of a URIRef) — likely an authoring typo."""


@dataclass
class BuiltinContext:
    """Per-run evaluation policy and warning dedup state.

    ``strict=True`` turns suspicious builtin arguments into hard
    :class:`RuleError`\\ s; the default emits one :class:`RuleWarning`
    per (rule, builtin) pair and bumps the
    ``reason_builtin_warnings_total`` observability counter, then keeps
    returning False for that branch like before.
    """

    strict: bool = False
    warned: Set[Tuple[str, str]] = field(default_factory=set)

    def flag(self, rule_name: str, builtin_name: str, detail: str) -> None:
        if self.strict:
            raise RuleError(f"rule {rule_name!r}: {builtin_name} {detail}")
        key = (rule_name, builtin_name)
        if key in self.warned:
            return
        self.warned.add(key)
        warnings.warn(
            f"rule {rule_name!r}: {builtin_name} {detail} "
            f"(comparison treated as False; enable strict builtins to "
            f"raise instead)", RuleWarning, stacklevel=2)
        from repro.core.observability import get_observability
        get_observability().metrics.counter(
            "reason_builtin_warnings_total",
            "suspicious builtin arguments flagged, by rule and builtin",
            rule=rule_name, builtin=builtin_name).inc()


#: Fallback context for callers that don't thread one through.
_DEFAULT_CONTEXT = BuiltinContext()


def _resolve(term: RuleTerm, bindings: Bindings) -> Optional[Node]:
    if isinstance(term, Variable):
        return bindings.get(term)
    return term


def _builtin_no_value(call: BuiltinCall, bindings: Bindings, graph: Graph,
                      rule_name: str, context: BuiltinContext) -> bool:
    if len(call.args) not in (2, 3):
        raise RuleError("noValue expects (s p) or (s p o)")
    subject = _resolve(call.args[0], bindings)
    predicate = _resolve(call.args[1], bindings)
    obj = _resolve(call.args[2], bindings) if len(call.args) == 3 else None
    for _ in graph.triples((subject, predicate, obj)):  # type: ignore[arg-type]
        return False
    return True


def _builtin_make_temp(call: BuiltinCall, bindings: Bindings, graph: Graph,
                       rule_name: str, context: BuiltinContext) -> bool:
    if len(call.args) != 1 or not isinstance(call.args[0], Variable):
        raise RuleError("makeTemp expects exactly one variable")
    variable = call.args[0]
    if variable in bindings:
        raise RuleError(f"makeTemp variable ?{variable} is already bound")
    digest_source = rule_name + "|" + "|".join(
        f"{name}={_canonical(value)}"
        for name, value in sorted(bindings.items()))
    digest = hashlib.md5(digest_source.encode("utf-8")).hexdigest()[:16]
    bindings[variable] = BNode(f"tmp_{digest}")
    return True


def _canonical(value: Node) -> str:
    if isinstance(value, Literal):
        return value.n3()
    return str(value)


def _numeric(value: Optional[Node]) -> Optional[float]:
    """The float behind a numeric literal, or None for anything else
    (URIRef, BNode, non-numeric literal)."""
    if not isinstance(value, Literal):
        return None
    try:
        return float(value.to_python())
    except (TypeError, ValueError):
        return None


def _comparison(name: str, test: Callable[[float, float], bool]):
    def builtin(call: BuiltinCall, bindings: Bindings, graph: Graph,
                rule_name: str, context: BuiltinContext) -> bool:
        if len(call.args) != 2:
            raise RuleError(f"{name} expects two arguments")
        left = _resolve(call.args[0], bindings)
        right = _resolve(call.args[1], bindings)
        if left is None or right is None:
            # unbound variable: a legitimate optional-binding guard
            return False
        left_value = _numeric(left)
        right_value = _numeric(right)
        if left_value is None or right_value is None:
            offender = left if left_value is None else right
            context.flag(rule_name, name,
                         f"got non-numeric argument {offender!r}")
            return False
        return test(left_value, right_value)

    return builtin


def _builtin_equal(call: BuiltinCall, bindings: Bindings, graph: Graph,
                   rule_name: str, context: BuiltinContext) -> bool:
    if len(call.args) != 2:
        raise RuleError("equal expects two arguments")
    left = _resolve(call.args[0], bindings)
    right = _resolve(call.args[1], bindings)
    return left is not None and left == right


def _builtin_not_equal(call: BuiltinCall, bindings: Bindings, graph: Graph,
                       rule_name: str, context: BuiltinContext) -> bool:
    if len(call.args) != 2:
        raise RuleError("notEqual expects two arguments")
    left = _resolve(call.args[0], bindings)
    right = _resolve(call.args[1], bindings)
    return left is not None and right is not None and left != right


def _builtin_bound(call: BuiltinCall, bindings: Bindings, graph: Graph,
                   rule_name: str, context: BuiltinContext) -> bool:
    return all(not isinstance(a, Variable) or a in bindings
               for a in call.args)


def _builtin_unbound(call: BuiltinCall, bindings: Bindings, graph: Graph,
                     rule_name: str, context: BuiltinContext) -> bool:
    return all(isinstance(a, Variable) and a not in bindings
               for a in call.args)


_BUILTINS: Dict[str, Callable] = {
    "noValue": _builtin_no_value,
    "makeTemp": _builtin_make_temp,
    "equal": _builtin_equal,
    "notEqual": _builtin_not_equal,
    "lessThan": _comparison("lessThan", lambda a, b: a < b),
    "greaterThan": _comparison("greaterThan", lambda a, b: a > b),
    "le": _comparison("le", lambda a, b: a <= b),
    "ge": _comparison("ge", lambda a, b: a >= b),
    "bound": _builtin_bound,
    "unbound": _builtin_unbound,
}

BUILTIN_NAMES = frozenset(_BUILTINS)


def evaluate_builtin(call: BuiltinCall, bindings: Bindings, graph: Graph,
                     rule_name: str,
                     context: Optional[BuiltinContext] = None) -> bool:
    """Run one builtin; may extend ``bindings`` (makeTemp).

    Returns False to prune the current match branch.  ``context``
    carries the strict/warn policy; omitting it uses a shared lenient
    default (warn once per process per (rule, builtin) pair).
    """
    try:
        implementation = _BUILTINS[call.name]
    except KeyError:
        raise RuleError(f"unknown builtin {call.name!r} "
                        f"in rule {rule_name!r}") from None
    return implementation(call, bindings, graph, rule_name,
                          context if context is not None
                          else _DEFAULT_CONTEXT)
