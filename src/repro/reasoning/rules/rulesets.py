"""The soccer rule base (paper §3.5).

``ASSIST_RULE_TEXT`` is the paper's Fig. 6 rule, executable verbatim by
our parser/engine.  ``SOCCER_RULES_TEXT`` extends it with the other
rules the evaluation relies on:

* team attribution — "the subjectTeam and objectTeam fields are also
  filled using the semantic rules" (§3.6.1, Table 1 note);
* conceding team / beaten goalkeeper — "we can infer the implicit
  knowledge of which goal is scored to which goalkeeper, even if that
  knowledge does not exist explicitly" (§4, Q-6);
* the ``actorOf…`` assertions that drive Q-7's property-hierarchy
  inference.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Tuple

from repro.rdf.namespace import SOCCER, NamespaceManager
from repro.reasoning.rules.ast import Rule
from repro.reasoning.rules.parser import parse_rules

__all__ = [
    "ASSIST_RULE_TEXT",
    "SOCCER_RULES_TEXT",
    "soccer_namespaces",
    "soccer_rules",
]

#: Fig. 6, as printed in the paper (prefix ``pre:`` = soccer namespace).
ASSIST_RULE_TEXT = """
[assistRule:
    noValue(?pass rdf:type pre:Assist)
    (?pass rdf:type pre:Pass)
    (?pass pre:passingPlayer ?passer)
    (?pass pre:passReceiver ?receiver)
    (?pass pre:inMatch ?match)
    (?pass pre:inMinute ?minute)
    (?goal pre:inMatch ?match)
    (?goal pre:inMinute ?minute)
    (?goal pre:scorerPlayer ?receiver)
    makeTemp(?tmp)
    -> (?tmp rdf:type pre:Assist)
       (?tmp pre:inMatch ?match)
       (?tmp pre:inMinute ?minute)
       (?tmp pre:passingPlayer ?passer)
       (?tmp pre:passReceiver ?receiver)
       (?tmp pre:assistedGoal ?goal)
]
"""

_TEAM_ATTRIBUTION = """
[subjectTeamRule:
    (?event pre:subjectPlayer ?player)
    (?player pre:playsFor ?team)
    -> (?event pre:subjectTeam ?team)
]

[objectTeamRule:
    (?event pre:objectPlayer ?player)
    (?player pre:playsFor ?team)
    -> (?event pre:objectTeam ?team)
]

[scoringTeamRule:
    (?goal rdf:type pre:Goal)
    noValue(?goal rdf:type pre:OwnGoal)
    (?goal pre:scorerPlayer ?player)
    (?player pre:playsFor ?team)
    -> (?goal pre:scoringTeam ?team)
]
"""

# Own goals invert team attribution: the scorer's own team concedes
# and the opponents are credited.  The generic rules are guarded with
# noValue so the two sets never both fire on the same goal.
_CONCEDING_AND_GOALKEEPER = """
[concedingHomeRule:
    (?goal rdf:type pre:Goal)
    noValue(?goal rdf:type pre:OwnGoal)
    (?goal pre:inMatch ?match)
    (?goal pre:scoringTeam ?scorers)
    (?match pre:homeTeam ?home)
    (?match pre:awayTeam ?away)
    equal(?scorers ?away)
    -> (?goal pre:concedingTeam ?home)
]

[concedingAwayRule:
    (?goal rdf:type pre:Goal)
    noValue(?goal rdf:type pre:OwnGoal)
    (?goal pre:inMatch ?match)
    (?goal pre:scoringTeam ?scorers)
    (?match pre:homeTeam ?home)
    (?match pre:awayTeam ?away)
    equal(?scorers ?home)
    -> (?goal pre:concedingTeam ?away)
]

[ownGoalConcedingRule:
    (?goal rdf:type pre:OwnGoal)
    (?goal pre:scorerPlayer ?player)
    (?player pre:playsFor ?team)
    -> (?goal pre:concedingTeam ?team)
]

[ownGoalScoringHomeRule:
    (?goal rdf:type pre:OwnGoal)
    (?goal pre:inMatch ?match)
    (?goal pre:concedingTeam ?conceding)
    (?match pre:homeTeam ?home)
    (?match pre:awayTeam ?away)
    equal(?conceding ?home)
    -> (?goal pre:scoringTeam ?away)
]

[ownGoalScoringAwayRule:
    (?goal rdf:type pre:OwnGoal)
    (?goal pre:inMatch ?match)
    (?goal pre:concedingTeam ?conceding)
    (?match pre:homeTeam ?home)
    (?match pre:awayTeam ?away)
    equal(?conceding ?away)
    -> (?goal pre:scoringTeam ?home)
]

[scoredToGoalkeeperRule:
    (?goal rdf:type pre:Goal)
    (?goal pre:concedingTeam ?team)
    (?team pre:hasGoalkeeper ?keeper)
    -> (?goal pre:beatenGoalkeeper ?keeper)
]
"""

_ACTOR_RULES = """
[actorOfGoalRule:
    (?goal rdf:type pre:Goal)
    (?goal pre:scorerPlayer ?player)
    -> (?player pre:actorOfGoal ?goal)
]

[actorOfOwnGoalRule:
    (?goal rdf:type pre:OwnGoal)
    (?goal pre:scorerPlayer ?player)
    -> (?player pre:actorOfOwnGoal ?goal)
]

[actorOfMissedGoalRule:
    (?miss rdf:type pre:MissedGoal)
    (?miss pre:missingPlayer ?player)
    -> (?player pre:actorOfMissedGoal ?miss)
]

[actorOfOffsideRule:
    (?offside rdf:type pre:Offside)
    (?offside pre:offsidePlayer ?player)
    -> (?player pre:actorOfOffside ?offside)
]

[actorOfRedCardRule:
    (?card rdf:type pre:RedCard)
    (?card pre:punishedPlayer ?player)
    -> (?player pre:actorOfRedCard ?card)
]

[actorOfYellowCardRule:
    (?card rdf:type pre:YellowCard)
    (?card pre:punishedPlayer ?player)
    -> (?player pre:actorOfYellowCard ?card)
]

[actorOfFoulRule:
    (?foul rdf:type pre:Foul)
    (?foul pre:foulingPlayer ?player)
    -> (?player pre:actorOfFoul ?foul)
]

[actorOfAssistRule:
    (?assist rdf:type pre:Assist)
    (?assist pre:passingPlayer ?player)
    -> (?player pre:actorOfAssist ?assist)
]

[actorOfSaveRule:
    (?save rdf:type pre:Save)
    (?save pre:savingGoalkeeper ?player)
    -> (?player pre:actorOfSave ?save)
]

[actorOfPassRule:
    (?pass rdf:type pre:Pass)
    (?pass pre:passingPlayer ?player)
    -> (?player pre:actorOfPass ?pass)
]

[actorOfTackleRule:
    (?tackle rdf:type pre:Tackle)
    (?tackle pre:tacklingPlayer ?player)
    -> (?player pre:actorOfTackle ?tackle)
]

[actorOfDribbleRule:
    (?dribble rdf:type pre:Dribble)
    (?dribble pre:dribblingPlayer ?player)
    -> (?player pre:actorOfDribble ?dribble)
]
"""

SOCCER_RULES_TEXT = (ASSIST_RULE_TEXT + _TEAM_ATTRIBUTION
                     + _CONCEDING_AND_GOALKEEPER + _ACTOR_RULES)


def soccer_namespaces() -> NamespaceManager:
    """Namespace bindings under which the rule base parses."""
    manager = NamespaceManager()
    manager.bind("pre", SOCCER)
    return manager


@lru_cache(maxsize=1)
def _cached_rules() -> Tuple[Rule, ...]:
    return tuple(parse_rules(SOCCER_RULES_TEXT, soccer_namespaces()))


def soccer_rules() -> List[Rule]:
    """Parse (once) and return the full soccer rule base."""
    return list(_cached_rules())
