"""Classification: class and property hierarchy closure.

Implements the "classification" reasoning service the paper obtains
from Pellet (§3.5): computing, for every class, the complete set of
super-classes implied by the subclass graph — the inference shown in
Fig. 5 for "Long Pass".  The same machinery covers the sub-property
hierarchy the paper uses for Q-7 (``actorOfRedCard`` ⊑
``actorOfNegativeMove``).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set

from repro.errors import OntologyError
from repro.rdf.term import URIRef
from repro.ontology.model import Ontology

__all__ = ["Taxonomy"]


class Taxonomy:
    """Pre-computed transitive closure over classes and properties.

    Construction is O(V + E) per hierarchy via memoized depth-first
    traversal; queries are set lookups.  Cycles in the declared
    hierarchy are rejected — OWL permits them (they imply equivalence)
    but the paper's engineering process never produces them and they
    usually indicate authoring errors.
    """

    def __init__(self, ontology: Ontology) -> None:
        self._ontology = ontology
        self._class_ancestors: Dict[URIRef, FrozenSet[URIRef]] = {}
        self._property_ancestors: Dict[URIRef, FrozenSet[URIRef]] = {}
        self._class_descendants: Dict[URIRef, Set[URIRef]] = {}
        self._property_descendants: Dict[URIRef, Set[URIRef]] = {}
        self._build()

    def _build(self) -> None:
        class_parents = {cls.uri: set(cls.parents)
                         for cls in self._ontology.classes()}
        property_parents = {prop.uri: set(prop.parents)
                            for prop in self._ontology.properties()}
        self._class_ancestors = _closure(class_parents, "class")
        self._property_ancestors = _closure(property_parents, "property")
        self._class_descendants = _invert(self._class_ancestors)
        self._property_descendants = _invert(self._property_ancestors)

    # ------------------------------------------------------------------
    # classes
    # ------------------------------------------------------------------

    def superclasses(self, uri: URIRef, include_self: bool = False
                     ) -> Set[URIRef]:
        """All (transitive) superclasses of ``uri``."""
        ancestors = set(self._class_ancestors.get(uri, frozenset()))
        if include_self:
            ancestors.add(uri)
        return ancestors

    def subclasses(self, uri: URIRef, include_self: bool = False
                   ) -> Set[URIRef]:
        """All (transitive) subclasses of ``uri``."""
        descendants = set(self._class_descendants.get(uri, set()))
        if include_self:
            descendants.add(uri)
        return descendants

    def is_subclass_of(self, child: URIRef, parent: URIRef) -> bool:
        """True when ``child`` ⊑ ``parent`` (reflexive)."""
        return child == parent \
            or parent in self._class_ancestors.get(child, frozenset())

    def lineage(self, uri: URIRef) -> List[URIRef]:
        """One root-ward path from ``uri`` (the Fig. 5 rendering).

        Follows the lexicographically-first parent at each step so the
        result is deterministic under multiple inheritance.
        """
        path = [uri]
        current = uri
        while True:
            parents = sorted(self._ontology.get_class(current).parents)
            if not parents:
                return path
            current = parents[0]
            path.append(current)

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------

    def superproperties(self, uri: URIRef, include_self: bool = False
                        ) -> Set[URIRef]:
        ancestors = set(self._property_ancestors.get(uri, frozenset()))
        if include_self:
            ancestors.add(uri)
        return ancestors

    def subproperties(self, uri: URIRef, include_self: bool = False
                      ) -> Set[URIRef]:
        descendants = set(self._property_descendants.get(uri, set()))
        if include_self:
            descendants.add(uri)
        return descendants

    def is_subproperty_of(self, child: URIRef, parent: URIRef) -> bool:
        return child == parent \
            or parent in self._property_ancestors.get(child, frozenset())


def _closure(parents: Dict[URIRef, Set[URIRef]], kind: str
             ) -> Dict[URIRef, FrozenSet[URIRef]]:
    """Memoized transitive closure with cycle detection."""
    resolved: Dict[URIRef, FrozenSet[URIRef]] = {}
    visiting: Set[URIRef] = set()

    def resolve(uri: URIRef) -> FrozenSet[URIRef]:
        cached = resolved.get(uri)
        if cached is not None:
            return cached
        if uri in visiting:
            raise OntologyError(f"cycle in {kind} hierarchy at {uri}")
        visiting.add(uri)
        ancestors: Set[URIRef] = set()
        for parent in parents.get(uri, ()):
            ancestors.add(parent)
            ancestors |= resolve(parent)
        visiting.discard(uri)
        frozen = frozenset(ancestors)
        resolved[uri] = frozen
        return frozen

    for uri in parents:
        resolve(uri)
    return resolved


def _invert(ancestors: Dict[URIRef, FrozenSet[URIRef]]
            ) -> Dict[URIRef, Set[URIRef]]:
    descendants: Dict[URIRef, Set[URIRef]] = {}
    for child, parents in ancestors.items():
        for parent in parents:
            descendants.setdefault(parent, set()).add(child)
    return descendants
