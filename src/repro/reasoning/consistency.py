"""Consistency checking (§3.5).

Validates an ABox against the TBox's constraints:

* **disjointness** — no individual may belong to two disjoint classes;
* **value constraints** — ``allValuesFrom`` fillers must hold for every
  value (e.g. only goalkeepers in the goalkeeping position);
* **cardinality constraints** — min/max/exact counts per property
  (e.g. at most one goalkeeper per team, exactly one home team);
* **functional properties** — at most one value;
* **range conformance** — object property values typed against the
  declared range.

Violations are returned as data so callers can report them; pass
``raise_on_error=True`` to get the paper's hard-failure behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ConsistencyError
from repro.rdf.term import Literal, URIRef
from repro.ontology.model import (Individual, Ontology, PropertyKind,
                                  RestrictionKind)
from repro.reasoning.taxonomy import Taxonomy

__all__ = ["Violation", "ConsistencyChecker", "check_consistency"]


@dataclass(frozen=True)
class Violation:
    """One detected inconsistency."""

    individual: URIRef
    kind: str
    message: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.individual.local_name}: {self.message}"


class ConsistencyChecker:
    """Checks ABoxes against one TBox.

    Reuse one checker across many match models: the taxonomy is
    computed once, matching the paper's offline-reasoning design.
    """

    def __init__(self, ontology: Ontology,
                 taxonomy: Taxonomy | None = None) -> None:
        self._ontology = ontology
        self._taxonomy = taxonomy or Taxonomy(ontology)

    def check(self, abox: Ontology,
              raise_on_error: bool = False) -> List[Violation]:
        violations: List[Violation] = []
        for individual in abox.individuals():
            violations.extend(self._check_disjointness(individual))
            violations.extend(self._check_functional(individual))
            violations.extend(self._check_ranges(abox, individual))
            violations.extend(self._check_restrictions(abox, individual))
        if violations and raise_on_error:
            raise ConsistencyError(
                f"{len(violations)} violation(s); first: {violations[0]}")
        return violations

    # ------------------------------------------------------------------

    def _check_disjointness(self, individual: Individual) -> List[Violation]:
        violations = []
        types = [t for t in individual.types if self._ontology.has_class(t)]
        for type_uri in types:
            declared = self._ontology.get_class(type_uri).disjoint_with
            for other in declared:
                # disjointness is inherited by subclasses of both sides
                for candidate in types:
                    if candidate != type_uri and \
                            self._taxonomy.is_subclass_of(candidate, other):
                        violations.append(Violation(
                            individual.uri, "disjoint",
                            f"belongs to disjoint classes "
                            f"{type_uri.local_name} and "
                            f"{candidate.local_name}"))
        return violations

    def _check_functional(self, individual: Individual) -> List[Violation]:
        violations = []
        for prop_uri, values in individual.properties.items():
            if not self._ontology.has_property(prop_uri):
                continue
            prop = self._ontology.get_property(prop_uri)
            if prop.functional and len(values) > 1:
                violations.append(Violation(
                    individual.uri, "functional",
                    f"{prop_uri.local_name} has {len(values)} values"))
        return violations

    def _check_ranges(self, abox: Ontology,
                      individual: Individual) -> List[Violation]:
        violations = []
        for prop_uri, values in individual.properties.items():
            if not self._ontology.has_property(prop_uri):
                continue
            prop = self._ontology.get_property(prop_uri)
            if prop.kind != PropertyKind.OBJECT or prop.range is None:
                continue
            for value in values:
                if isinstance(value, Literal):
                    violations.append(Violation(
                        individual.uri, "range",
                        f"object property {prop_uri.local_name} "
                        f"has literal value {value.lexical!r}"))
                elif isinstance(value, URIRef) and abox.has_individual(value):
                    target = abox.individual(value)
                    if target.types and not any(
                            self._taxonomy.is_subclass_of(t, prop.range)
                            for t in target.types):
                        violations.append(Violation(
                            individual.uri, "range",
                            f"value {value.local_name} of "
                            f"{prop_uri.local_name} is not a "
                            f"{prop.range.local_name}"))
        return violations

    def _check_restrictions(self, abox: Ontology,
                            individual: Individual) -> List[Violation]:
        violations = []
        for restriction in self._ontology.restrictions():
            applies = any(
                self._taxonomy.is_subclass_of(t, restriction.on_class)
                for t in individual.types)
            if not applies:
                continue
            values = individual.properties.get(restriction.on_property, [])
            kind = restriction.kind
            prop_name = restriction.on_property.local_name
            if kind == RestrictionKind.ALL_VALUES_FROM:
                for value in values:
                    if isinstance(value, URIRef) \
                            and abox.has_individual(value):
                        target = abox.individual(value)
                        filler = restriction.filler
                        if target.types and not any(
                                self._taxonomy.is_subclass_of(t, filler)
                                for t in target.types):
                            violations.append(Violation(
                                individual.uri, "allValuesFrom",
                                f"value {value.local_name} of {prop_name} "
                                f"is not a {filler.local_name}"))
            elif kind == RestrictionKind.MAX_CARDINALITY:
                if len(values) > restriction.filler:
                    violations.append(Violation(
                        individual.uri, "maxCardinality",
                        f"{prop_name} has {len(values)} values, "
                        f"at most {restriction.filler} allowed"))
            elif kind == RestrictionKind.MIN_CARDINALITY:
                if len(values) < restriction.filler:
                    violations.append(Violation(
                        individual.uri, "minCardinality",
                        f"{prop_name} has {len(values)} values, "
                        f"at least {restriction.filler} required"))
            elif kind == RestrictionKind.CARDINALITY:
                if len(values) != restriction.filler:
                    violations.append(Violation(
                        individual.uri, "cardinality",
                        f"{prop_name} has {len(values)} values, "
                        f"exactly {restriction.filler} required"))
        return violations


def check_consistency(abox: Ontology, ontology: Ontology | None = None,
                      raise_on_error: bool = False) -> List[Violation]:
    """Convenience wrapper around :class:`ConsistencyChecker`."""
    tbox = ontology or abox
    return ConsistencyChecker(tbox).check(abox, raise_on_error)
