"""SPARQL query executor.

Ties together the parser and the algebra: parse once, evaluate against
any :class:`~repro.rdf.graph.Graph`.  This is the "formal query"
interface the paper contrasts with keyword search (§8): maximal
precision/recall, but requiring knowledge of the ontology and the query
language.
"""

from __future__ import annotations

from typing import List

from repro.rdf.graph import Graph
from repro.rdf.namespace import NamespaceManager
from repro.rdf.term import Literal, Node, Variable
from repro.rdf.term import BNode, URIRef, Variable as VariableTerm
from repro.sparql.algebra import evaluate_group
from repro.sparql.ast import (AskQuery, ConstructQuery, Query,
                              SelectQuery)
from repro.sparql.parser import parse_query
from repro.sparql.results import ResultSet, Row

__all__ = ["PreparedQuery", "prepare", "query", "ask", "construct"]


class PreparedQuery:
    """A parsed query that can be executed repeatedly."""

    def __init__(self, parsed: Query) -> None:
        self._parsed = parsed

    @property
    def is_ask(self) -> bool:
        return isinstance(self._parsed, AskQuery)

    @property
    def is_construct(self) -> bool:
        return isinstance(self._parsed, ConstructQuery)

    def execute(self, graph: Graph):
        """Run against ``graph``.

        Returns a :class:`ResultSet` for SELECT, a bool for ASK and a
        :class:`~repro.rdf.graph.Graph` for CONSTRUCT.
        """
        if isinstance(self._parsed, AskQuery):
            for _ in evaluate_group(graph, self._parsed.where):
                return True
            return False
        if isinstance(self._parsed, ConstructQuery):
            return _execute_construct(graph, self._parsed)
        return _execute_select(graph, self._parsed)


def prepare(text: str, namespaces: NamespaceManager | None = None
            ) -> PreparedQuery:
    """Parse ``text`` into a reusable :class:`PreparedQuery`."""
    return PreparedQuery(parse_query(text, namespaces))


def query(graph: Graph, text: str,
          namespaces: NamespaceManager | None = None) -> ResultSet:
    """Parse and run a SELECT query in one call."""
    result = prepare(text, namespaces or graph.namespace_manager).execute(graph)
    if not isinstance(result, ResultSet):
        raise TypeError("use ask()/construct() for ASK/CONSTRUCT "
                        "queries")
    return result


def ask(graph: Graph, text: str,
        namespaces: NamespaceManager | None = None) -> bool:
    """Parse and run an ASK query in one call."""
    result = prepare(text, namespaces or graph.namespace_manager).execute(graph)
    if not isinstance(result, bool):
        raise TypeError("use query() for SELECT queries")
    return result


def construct(graph: Graph, text: str,
              namespaces: NamespaceManager | None = None) -> Graph:
    """Parse and run a CONSTRUCT query in one call."""
    result = prepare(text,
                     namespaces or graph.namespace_manager).execute(graph)
    if not isinstance(result, Graph):
        raise TypeError("use query()/ask() for SELECT/ASK queries")
    return result


def _execute_construct(graph: Graph,
                       parsed: ConstructQuery) -> Graph:
    """Instantiate the template once per solution.

    Template triples with an unbound variable, a literal in subject
    position or a non-IRI predicate are skipped for that solution
    (standard CONSTRUCT semantics)."""
    output = Graph(identifier="constructed")
    output.namespace_manager = graph.namespace_manager
    for binding in evaluate_group(graph, parsed.where):
        for pattern in parsed.template:
            triple = []
            ok = True
            for term in (pattern.subject, pattern.predicate,
                         pattern.obj):
                if isinstance(term, VariableTerm):
                    value = binding.get(term)
                    if value is None:
                        ok = False
                        break
                    triple.append(value)
                else:
                    triple.append(term)
            if not ok:
                continue
            subject, predicate, obj = triple
            if not isinstance(subject, (URIRef, BNode)):
                continue
            if not isinstance(predicate, URIRef):
                continue
            output.add((subject, predicate, obj))
    return output


def _execute_select(graph: Graph, select: SelectQuery) -> ResultSet:
    projection = select.projection
    rows: List[Row] = []
    for binding in evaluate_group(graph, select.where):
        values = tuple(binding.get(variable) for variable in projection)
        rows.append(Row(projection, values))
    if select.distinct:
        seen = set()
        unique: List[Row] = []
        for row in rows:
            key = row.astuple()
            if key not in seen:
                seen.add(key)
                unique.append(row)
        rows = unique
    for condition in reversed(select.order_by):
        rows.sort(key=lambda row: _sort_key(row[str(condition.variable)]),
                  reverse=condition.descending)
    if select.offset:
        rows = rows[select.offset:]
    if select.limit is not None:
        rows = rows[:select.limit]
    return ResultSet(projection, rows)


def _sort_key(value: Node | None) -> tuple:
    """Total order over heterogenous solution values.

    Unbound < literals-by-value < IRIs/bnodes-by-string, with numeric
    literals comparing numerically among themselves.
    """
    if value is None:
        return (0, 0, "")
    if isinstance(value, Literal):
        python_value = value.to_python()
        if isinstance(python_value, bool):
            return (1, 0, str(int(python_value)))
        if isinstance(python_value, (int, float)):
            return (1, 1, float(python_value))
        return (1, 2, str(python_value))
    return (2, 0, str(value))
