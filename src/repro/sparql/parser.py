"""Recursive-descent parser for the SPARQL subset.

Grammar (simplified EBNF)::

    Query        := Prologue (SelectQuery | AskQuery)
    Prologue     := ("PREFIX" PNAME_NS IRI)*
    SelectQuery  := "SELECT" "DISTINCT"? ("*" | Var+) WhereClause Modifiers
    AskQuery     := "ASK" GroupPattern
    WhereClause  := "WHERE"? GroupPattern
    GroupPattern := "{" (TriplesBlock | Filter | Optional)* "}"
    Filter       := "FILTER" "(" Expression ")"
    Optional     := "OPTIONAL" GroupPattern
    Modifiers    := ("ORDER" "BY" OrderCond+)? ("LIMIT" n)? ("OFFSET" n)?
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ParseError
from repro.rdf.namespace import RDF, NamespaceManager
from repro.rdf.term import Literal, URIRef, Variable
from repro.sparql.ast import (AskQuery, BoundCall, Comparison, ConstantExpr,
                              ConstructQuery, Expression, Filter,
                              GroupPattern, LogicalAnd, LogicalNot,
                              LogicalOr, Optional_, OrderCondition,
                              PatternTerm, Query, RegexCall, SelectQuery,
                              TriplePattern, UnionPattern, VariableExpr)
from repro.sparql.lexer import Token, tokenize

__all__ = ["parse_query"]

_COMPARISON_OPS = {"=", "!=", "<", "<=", ">", ">="}


def parse_query(text: str,
                namespaces: NamespaceManager | None = None) -> Query:
    """Parse ``text`` into a :class:`SelectQuery` or :class:`AskQuery`.

    Args:
        text: the query string.
        namespaces: optional pre-populated prefix bindings; PREFIX
            declarations in the query extend (and shadow) them.
    """
    return _Parser(tokenize(text), namespaces).parse()


class _Parser:
    def __init__(self, tokens: List[Token],
                 namespaces: NamespaceManager | None) -> None:
        self._tokens = tokens
        self._pos = 0
        self._ns = namespaces or NamespaceManager()

    # ------------------------------------------------------------------
    # token plumbing
    # ------------------------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._current
        if token.kind != "EOF":
            self._pos += 1
        return token

    def _fail(self, message: str) -> ParseError:
        token = self._current
        return ParseError(f"{message}, found {token.text!r}",
                          line=token.line, column=token.column)

    def _accept_keyword(self, word: str) -> bool:
        token = self._current
        if token.kind == "KEYWORD" and token.upper() == word:
            self._advance()
            return True
        return False

    def _expect_keyword(self, word: str) -> None:
        if not self._accept_keyword(word):
            raise self._fail(f"expected {word}")

    def _accept_op(self, op: str) -> bool:
        token = self._current
        if token.kind == "OP" and token.text == op:
            self._advance()
            return True
        return False

    def _expect_op(self, op: str) -> None:
        if not self._accept_op(op):
            raise self._fail(f"expected {op!r}")

    # ------------------------------------------------------------------
    # grammar
    # ------------------------------------------------------------------

    def parse(self) -> Query:
        self._parse_prologue()
        token = self._current
        if token.kind == "KEYWORD" and token.upper() == "SELECT":
            query = self._parse_select()
        elif token.kind == "KEYWORD" and token.upper() == "ASK":
            query = self._parse_ask()
        elif token.kind == "KEYWORD" and token.upper() == "CONSTRUCT":
            query = self._parse_construct()
        else:
            raise self._fail("expected SELECT, ASK or CONSTRUCT")
        if self._current.kind != "EOF":
            raise self._fail("unexpected trailing content")
        return query

    def _parse_prologue(self) -> None:
        while self._accept_keyword("PREFIX"):
            token = self._advance()
            if token.kind != "PREFIX_NS":
                raise self._fail("expected prefix name after PREFIX")
            prefix = token.text[:-1]
            iri_token = self._advance()
            if iri_token.kind != "IRI":
                raise self._fail("expected IRI after prefix name")
            self._ns.bind(prefix, iri_token.text[1:-1])

    def _parse_select(self) -> SelectQuery:
        self._expect_keyword("SELECT")
        distinct = self._accept_keyword("DISTINCT")
        variables: List[Variable] = []
        if self._accept_op("*"):
            pass
        else:
            while self._current.kind == "VAR":
                variables.append(Variable(self._advance().text[1:]))
            if not variables:
                raise self._fail("expected '*' or at least one variable")
        self._accept_keyword("WHERE")
        where = self._parse_group()
        order_by = self._parse_order_by()
        limit, offset = self._parse_limit_offset()
        return SelectQuery(variables=variables, where=where,
                           distinct=distinct, order_by=order_by,
                           limit=limit, offset=offset)

    def _parse_ask(self) -> AskQuery:
        self._expect_keyword("ASK")
        self._accept_keyword("WHERE")
        return AskQuery(where=self._parse_group())

    def _parse_construct(self) -> ConstructQuery:
        self._expect_keyword("CONSTRUCT")
        template_group = self._parse_group()
        if template_group.filters or template_group.optionals \
                or template_group.unions:
            raise self._fail("CONSTRUCT template may contain only "
                             "triple patterns")
        self._accept_keyword("WHERE")
        where = self._parse_group()
        if not template_group.triples:
            raise ParseError("CONSTRUCT template is empty")
        return ConstructQuery(template=template_group.triples,
                              where=where)

    def _parse_order_by(self) -> List[OrderCondition]:
        conditions: List[OrderCondition] = []
        if not self._accept_keyword("ORDER"):
            return conditions
        self._expect_keyword("BY")
        while True:
            descending = False
            if self._accept_keyword("DESC"):
                descending = True
                self._expect_op("(")
                variable = self._expect_variable()
                self._expect_op(")")
            elif self._accept_keyword("ASC"):
                self._expect_op("(")
                variable = self._expect_variable()
                self._expect_op(")")
            elif self._current.kind == "VAR":
                variable = self._expect_variable()
            else:
                break
            conditions.append(OrderCondition(variable, descending))
        if not conditions:
            raise self._fail("expected order condition after ORDER BY")
        return conditions

    def _parse_limit_offset(self) -> tuple:
        limit: Optional[int] = None
        offset = 0
        # LIMIT and OFFSET may appear in either order.
        for _ in range(2):
            if self._accept_keyword("LIMIT"):
                limit = self._expect_integer()
            elif self._accept_keyword("OFFSET"):
                offset = self._expect_integer()
        return limit, offset

    def _expect_integer(self) -> int:
        token = self._advance()
        if token.kind != "NUMBER" or "." in token.text:
            raise self._fail("expected an integer")
        return int(token.text)

    def _expect_variable(self) -> Variable:
        token = self._advance()
        if token.kind != "VAR":
            raise self._fail("expected a variable")
        return Variable(token.text[1:])

    def _parse_group(self) -> GroupPattern:
        self._expect_op("{")
        group = GroupPattern()
        while not self._accept_op("}"):
            if self._current.kind == "EOF":
                raise self._fail("unterminated group pattern")
            if self._accept_op("."):
                # stray separator (e.g. after a FILTER) is harmless
                continue
            if self._accept_keyword("FILTER"):
                self._expect_op("(")
                expression = self._parse_expression()
                self._expect_op(")")
                group.filters.append(Filter(expression))
            elif self._accept_keyword("OPTIONAL"):
                group.optionals.append(Optional_(self._parse_group()))
            elif self._current.kind == "OP" and self._current.text == "{":
                group.unions.append(self._parse_union())
            else:
                self._parse_triples_block(group)
        return group

    def _parse_union(self) -> UnionPattern:
        union = UnionPattern(branches=[self._parse_group()])
        while self._accept_keyword("UNION"):
            union.branches.append(self._parse_group())
        if len(union.branches) < 2:
            raise self._fail("expected UNION after group")
        return union

    def _parse_triples_block(self, group: GroupPattern) -> None:
        subject = self._parse_term()
        while True:
            predicate = self._parse_verb()
            while True:
                obj = self._parse_term()
                group.triples.append(TriplePattern(subject, predicate, obj))
                if not self._accept_op(","):
                    break
            if not self._accept_op(";"):
                break
            # allow trailing ';' before '.' or '}'
            if self._current.kind == "OP" and self._current.text in (".", "}"):
                break
        self._accept_op(".")

    def _parse_verb(self) -> PatternTerm:
        token = self._current
        if token.kind == "KEYWORD" and token.text == "a":
            self._advance()
            return RDF.type
        return self._parse_term()

    def _parse_term(self) -> PatternTerm:
        token = self._advance()
        if token.kind == "VAR":
            return Variable(token.text[1:])
        if token.kind == "IRI":
            return URIRef(token.text[1:-1])
        if token.kind == "PNAME":
            return self._ns.expand(token.text)
        if token.kind == "STRING":
            return self._finish_literal(token)
        if token.kind == "NUMBER":
            text = token.text
            if any(ch in text for ch in ".eE"):
                return Literal(float(text))
            return Literal(int(text))
        if token.kind == "KEYWORD" and token.upper() in ("TRUE", "FALSE"):
            return Literal(token.upper() == "TRUE")
        raise self._fail("expected an RDF term")

    def _finish_literal(self, token: Token) -> Literal:
        # Only plain string literals are supported in query position;
        # typed/tagged literals are rarely needed in keyword-era queries
        # and can always be matched through FILTER comparisons instead.
        return Literal(_unescape(token.text[1:-1]))

    # ------------------------------------------------------------------
    # expressions (precedence: || < && < comparison < unary)
    # ------------------------------------------------------------------

    def _parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        left = self._parse_and()
        while self._accept_op("||"):
            left = LogicalOr(left, self._parse_and())
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_comparison()
        while self._accept_op("&&"):
            left = LogicalAnd(left, self._parse_comparison())
        return left

    def _parse_comparison(self) -> Expression:
        left = self._parse_unary()
        token = self._current
        if token.kind == "OP" and token.text in _COMPARISON_OPS:
            self._advance()
            right = self._parse_unary()
            return Comparison(token.text, left, right)
        return left

    def _parse_unary(self) -> Expression:
        if self._accept_op("!"):
            return LogicalNot(self._parse_unary())
        if self._accept_op("("):
            inner = self._parse_expression()
            self._expect_op(")")
            return inner
        token = self._current
        if token.kind == "KEYWORD" and token.upper() == "BOUND":
            self._advance()
            self._expect_op("(")
            variable = self._expect_variable()
            self._expect_op(")")
            return BoundCall(variable)
        if token.kind == "KEYWORD" and token.upper() == "REGEX":
            self._advance()
            self._expect_op("(")
            text_expr = self._parse_expression()
            self._expect_op(",")
            pattern_token = self._advance()
            if pattern_token.kind != "STRING":
                raise self._fail("REGEX pattern must be a string literal")
            flags = ""
            if self._accept_op(","):
                flags_token = self._advance()
                if flags_token.kind != "STRING":
                    raise self._fail("REGEX flags must be a string literal")
                flags = _unescape(flags_token.text[1:-1])
            self._expect_op(")")
            return RegexCall(text_expr, _unescape(pattern_token.text[1:-1]),
                             flags)
        if token.kind == "VAR":
            self._advance()
            return VariableExpr(Variable(token.text[1:]))
        return ConstantExpr(self._parse_term())


def _unescape(text: str) -> str:
    return (text.replace("\\n", "\n").replace("\\t", "\t")
            .replace("\\r", "\r").replace('\\"', '"')
            .replace("\\\\", "\\"))
