"""Abstract syntax tree for the SPARQL subset.

The grammar covered (enough for the paper's "formal query" comparison):

* ``PREFIX`` declarations
* ``SELECT [DISTINCT] (* | ?var …) WHERE { … }``
* ``ASK { … }``
* basic graph patterns (triple patterns over IRIs/literals/variables)
* ``FILTER`` with comparisons, logical operators, ``BOUND``, ``REGEX``
* ``OPTIONAL { … }``
* ``ORDER BY [ASC|DESC](?var)``, ``LIMIT n``, ``OFFSET n``
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro.rdf.term import Literal, Node, URIRef, Variable

__all__ = [
    "TriplePattern",
    "Expression",
    "VariableExpr",
    "ConstantExpr",
    "Comparison",
    "LogicalAnd",
    "LogicalOr",
    "LogicalNot",
    "BoundCall",
    "RegexCall",
    "Filter",
    "Optional_",
    "UnionPattern",
    "GroupPattern",
    "OrderCondition",
    "SelectQuery",
    "AskQuery",
    "ConstructQuery",
    "Query",
]

#: A pattern term: constant node or variable.
PatternTerm = Union[URIRef, Literal, Variable]


@dataclass(frozen=True)
class TriplePattern:
    """One triple pattern inside a basic graph pattern."""

    subject: PatternTerm
    predicate: PatternTerm
    obj: PatternTerm

    def variables(self) -> Tuple[Variable, ...]:
        return tuple(t for t in (self.subject, self.predicate, self.obj)
                     if isinstance(t, Variable))


class Expression:
    """Base class for FILTER expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class VariableExpr(Expression):
    variable: Variable


@dataclass(frozen=True)
class ConstantExpr(Expression):
    value: Node


@dataclass(frozen=True)
class Comparison(Expression):
    """A binary comparison: one of ``= != < <= > >=``."""

    operator: str
    left: Expression
    right: Expression


@dataclass(frozen=True)
class LogicalAnd(Expression):
    left: Expression
    right: Expression


@dataclass(frozen=True)
class LogicalOr(Expression):
    left: Expression
    right: Expression


@dataclass(frozen=True)
class LogicalNot(Expression):
    operand: Expression


@dataclass(frozen=True)
class BoundCall(Expression):
    variable: Variable


@dataclass(frozen=True)
class RegexCall(Expression):
    """``REGEX(expr, "pattern" [, "flags"])``."""

    text: Expression
    pattern: str
    flags: str = ""


@dataclass(frozen=True)
class Filter:
    expression: Expression


@dataclass(frozen=True)
class Optional_:
    """An OPTIONAL group (left outer join)."""

    pattern: "GroupPattern"


@dataclass
class UnionPattern:
    """``{ A } UNION { B } [UNION { C } …]`` — alternatives whose
    solutions are concatenated."""

    branches: List["GroupPattern"] = field(default_factory=list)

    def variables(self) -> Tuple[Variable, ...]:
        seen: dict = {}
        for branch in self.branches:
            for variable in branch.variables():
                seen.setdefault(variable, None)
        return tuple(seen)


@dataclass
class GroupPattern:
    """A group graph pattern: triples, filters, optionals, unions."""

    triples: List[TriplePattern] = field(default_factory=list)
    filters: List[Filter] = field(default_factory=list)
    optionals: List[Optional_] = field(default_factory=list)
    unions: List[UnionPattern] = field(default_factory=list)

    def variables(self) -> Tuple[Variable, ...]:
        seen: dict = {}
        for pattern in self.triples:
            for variable in pattern.variables():
                seen.setdefault(variable, None)
        for union in self.unions:
            for variable in union.variables():
                seen.setdefault(variable, None)
        for optional in self.optionals:
            for variable in optional.pattern.variables():
                seen.setdefault(variable, None)
        return tuple(seen)


@dataclass(frozen=True)
class OrderCondition:
    variable: Variable
    descending: bool = False


@dataclass
class SelectQuery:
    """A parsed SELECT query."""

    variables: List[Variable]          # empty list means SELECT *
    where: GroupPattern
    distinct: bool = False
    order_by: List[OrderCondition] = field(default_factory=list)
    limit: Optional[int] = None
    offset: int = 0

    @property
    def projection(self) -> Tuple[Variable, ...]:
        """The variables actually projected (resolves ``*``)."""
        if self.variables:
            return tuple(self.variables)
        return self.where.variables()


@dataclass
class AskQuery:
    """A parsed ASK query."""

    where: GroupPattern


@dataclass
class ConstructQuery:
    """A parsed CONSTRUCT query: template triples + WHERE pattern."""

    template: List[TriplePattern]
    where: GroupPattern


Query = Union[SelectQuery, AskQuery, ConstructQuery]
