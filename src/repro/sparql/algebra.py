"""Evaluation algebra for the SPARQL subset.

Implements basic graph pattern matching with greedy join ordering
(most-selective pattern first), left outer joins for OPTIONAL and
effective-boolean-value FILTER evaluation, following the SPARQL 1.1
semantics for the covered subset.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, Iterator, List, Optional

from repro.errors import SparqlError
from repro.rdf.graph import Graph
from repro.rdf.term import Literal, Node, URIRef, Variable
from repro.sparql.ast import (BoundCall, Comparison, ConstantExpr,
                              Expression, GroupPattern, LogicalAnd,
                              LogicalNot, LogicalOr, RegexCall,
                              TriplePattern, VariableExpr)

__all__ = ["Binding", "evaluate_group", "evaluate_expression"]

#: A solution mapping from variable to bound node.
Binding = Dict[Variable, Node]


def evaluate_group(graph: Graph, group: GroupPattern) -> Iterator[Binding]:
    """Yield every solution of ``group`` against ``graph``."""
    solutions = _evaluate_bgp(graph, group.triples)
    for union in group.unions:
        solutions = _union_join(graph, solutions, union)
    for optional in group.optionals:
        solutions = _left_join(graph, solutions, optional.pattern)
    for filter_ in group.filters:
        solutions = (binding for binding in solutions
                     if _ebv(evaluate_expression(filter_.expression, binding)))
    return solutions


def _union_join(graph: Graph, solutions: Iterable[Binding],
                union) -> Iterator[Binding]:
    """Join current solutions with the concatenated branch solutions.

    Unlike OPTIONAL, at least one branch must match — a binding with
    no compatible branch solution is dropped."""
    for binding in solutions:
        for branch in union.branches:
            yield from evaluate_group_with_binding(graph, branch, binding)


def evaluate_group_with_binding(graph: Graph, group: GroupPattern,
                                binding: Binding) -> Iterator[Binding]:
    """Evaluate a (nested) group under pre-existing bindings."""
    ordered = sorted(group.triples,
                     key=lambda p: _selectivity(graph, p, binding))
    candidates: Iterable[Binding] = _join(graph, ordered, 0, binding)
    for union in group.unions:
        candidates = _union_join(graph, candidates, union)
    for optional in group.optionals:
        candidates = _left_join(graph, candidates, optional.pattern)
    for filter_ in group.filters:
        candidates = (b for b in candidates
                      if _ebv(evaluate_expression(filter_.expression, b)))
    yield from candidates


def _evaluate_bgp(graph: Graph, patterns: List[TriplePattern]
                  ) -> Iterator[Binding]:
    if not patterns:
        yield {}
        return
    ordered = sorted(patterns, key=lambda p: _selectivity(graph, p, {}))
    yield from _join(graph, ordered, 0, {})


def _selectivity(graph: Graph, pattern: TriplePattern,
                 binding: Binding) -> int:
    """Estimated result size for greedy join ordering."""
    resolved = _resolve_pattern(pattern, binding)
    return graph.count(resolved)


def _resolve_pattern(pattern: TriplePattern, binding: Binding) -> tuple:
    def resolve(term):
        if isinstance(term, Variable):
            return binding.get(term)
        return term

    return (resolve(pattern.subject), resolve(pattern.predicate),
            resolve(pattern.obj))


def _join(graph: Graph, patterns: List[TriplePattern], index: int,
          binding: Binding) -> Iterator[Binding]:
    if index == len(patterns):
        yield dict(binding)
        return
    pattern = patterns[index]
    resolved = _resolve_pattern(pattern, binding)
    for subject, predicate, obj in graph.triples(resolved):
        extended = _extend(pattern, binding, subject, predicate, obj)
        if extended is not None:
            yield from _join(graph, patterns, index + 1, extended)


def _extend(pattern: TriplePattern, binding: Binding,
            subject: Node, predicate: Node, obj: Node
            ) -> Optional[Binding]:
    extended = dict(binding)
    for term, value in ((pattern.subject, subject),
                        (pattern.predicate, predicate),
                        (pattern.obj, obj)):
        if isinstance(term, Variable):
            bound = extended.get(term)
            if bound is None:
                extended[term] = value
            elif bound != value:
                return None
    return extended


def _left_join(graph: Graph, solutions: Iterable[Binding],
               optional: GroupPattern) -> Iterator[Binding]:
    for binding in solutions:
        matched = False
        for extension in evaluate_group_with_binding(graph, optional,
                                                     binding):
            matched = True
            yield extension
        if not matched:
            yield binding


# ----------------------------------------------------------------------
# expression evaluation
# ----------------------------------------------------------------------

class _Unbound:
    """Sentinel for evaluating expressions over unbound variables."""

    __slots__ = ()


_UNBOUND = _Unbound()


def evaluate_expression(expression: Expression, binding: Binding):
    """Evaluate a FILTER expression under ``binding``.

    Returns a Python value (bool, number, string) or node.  Unbound
    variables evaluate to a sentinel which makes every comparison false
    and ``BOUND`` false, per SPARQL error semantics.
    """
    if isinstance(expression, ConstantExpr):
        return _to_python(expression.value)
    if isinstance(expression, VariableExpr):
        value = binding.get(expression.variable, _UNBOUND)
        return _to_python(value)
    if isinstance(expression, BoundCall):
        return expression.variable in binding
    if isinstance(expression, Comparison):
        return _compare(expression.operator,
                        evaluate_expression(expression.left, binding),
                        evaluate_expression(expression.right, binding))
    if isinstance(expression, LogicalAnd):
        return (_ebv(evaluate_expression(expression.left, binding))
                and _ebv(evaluate_expression(expression.right, binding)))
    if isinstance(expression, LogicalOr):
        return (_ebv(evaluate_expression(expression.left, binding))
                or _ebv(evaluate_expression(expression.right, binding)))
    if isinstance(expression, LogicalNot):
        return not _ebv(evaluate_expression(expression.operand, binding))
    if isinstance(expression, RegexCall):
        text = evaluate_expression(expression.text, binding)
        if not isinstance(text, str):
            return False
        flags = re.IGNORECASE if "i" in expression.flags else 0
        return re.search(expression.pattern, text, flags) is not None
    raise SparqlError(f"unsupported expression: {expression!r}")


def _to_python(value):
    if isinstance(value, Literal):
        return value.to_python()
    if isinstance(value, URIRef):
        return str(value)
    return value


def _compare(operator: str, left, right) -> bool:
    if isinstance(left, _Unbound) or isinstance(right, _Unbound):
        return False
    try:
        if operator == "=":
            return left == right
        if operator == "!=":
            return left != right
        if operator == "<":
            return left < right
        if operator == "<=":
            return left <= right
        if operator == ">":
            return left > right
        if operator == ">=":
            return left >= right
    except TypeError:
        return False
    raise SparqlError(f"unknown comparison operator {operator!r}")


def _ebv(value) -> bool:
    """Effective boolean value."""
    if isinstance(value, _Unbound):
        return False
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    if isinstance(value, str):
        return bool(value)
    return value is not None
