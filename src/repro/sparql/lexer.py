"""Tokenizer for the SPARQL subset.

Produces a flat token stream consumed by the recursive-descent parser.
Token kinds are deliberately coarse; keyword recognition happens in the
parser so that keywords remain usable as prefix names.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List

from repro.errors import ParseError

__all__ = ["Token", "tokenize"]

#: Token kinds, ordered by match priority.
_TOKEN_SPEC = [
    ("COMMENT", r"#[^\n]*"),
    ("IRI", r"<[^<>\"\s{}|^`\\]*>"),
    ("STRING", r'"(?:[^"\\]|\\.)*"'),
    ("VAR", r"[?$][A-Za-z_][A-Za-z0-9_]*"),
    ("NUMBER", r"[+-]?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?"),
    ("PNAME", r"[A-Za-z_][A-Za-z0-9_\-]*:[A-Za-z_][A-Za-z0-9_\-.]*"),
    ("PREFIX_NS", r"[A-Za-z_][A-Za-z0-9_\-]*:"),
    ("KEYWORD", r"[A-Za-z_][A-Za-z0-9_]*"),
    ("OP", r"<=|>=|!=|&&|\|\||[=<>!*{}().,;]"),
    ("WS", r"[ \t\r\n]+"),
]

_MASTER = re.compile("|".join(f"(?P<{name}>{pattern})"
                              for name, pattern in _TOKEN_SPEC))


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int
    column: int

    def upper(self) -> str:
        return self.text.upper()


def tokenize(query: str) -> List[Token]:
    """Split ``query`` into tokens, dropping whitespace and comments."""
    tokens: List[Token] = []
    line = 1
    line_start = 0
    pos = 0
    while pos < len(query):
        match = _MASTER.match(query, pos)
        if match is None:
            column = pos - line_start + 1
            raise ParseError(f"unexpected character {query[pos]!r}",
                             line=line, column=column)
        kind = match.lastgroup or ""
        text = match.group()
        if kind not in ("WS", "COMMENT"):
            tokens.append(Token(kind, text, line, pos - line_start + 1))
        newlines = text.count("\n")
        if newlines:
            line += newlines
            line_start = pos + text.rindex("\n") + 1
        pos = match.end()
    tokens.append(Token("EOF", "", line, pos - line_start + 1))
    return tokens
