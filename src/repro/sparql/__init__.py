"""A SPARQL subset (SELECT/ASK over basic graph patterns).

Serves two purposes in the reproduction:

* the formal-query baseline the paper positions keyword search against
  ("the best that can be achieved with semantic querying", §8);
* a general query facility over populated match models for tests and
  examples.
"""

from repro.sparql.engine import (PreparedQuery, ask, construct,
                                 prepare, query)
from repro.sparql.parser import parse_query
from repro.sparql.results import ResultSet, Row

__all__ = [
    "PreparedQuery",
    "prepare",
    "query",
    "ask",
    "construct",
    "parse_query",
    "ResultSet",
    "Row",
]
