"""Result containers for SPARQL query execution."""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

from repro.rdf.term import Node, Variable

__all__ = ["Row", "ResultSet"]


class Row:
    """One solution row: access by variable name, index or attribute."""

    __slots__ = ("_variables", "_values")

    def __init__(self, variables: Sequence[Variable],
                 values: Sequence[Node | None]) -> None:
        self._variables = tuple(variables)
        self._values = tuple(values)

    def __getitem__(self, key) -> Node | None:
        if isinstance(key, int):
            return self._values[key]
        name = key[1:] if isinstance(key, str) and key.startswith("?") else key
        for variable, value in zip(self._variables, self._values):
            if str(variable) == name:
                return value
        raise KeyError(key)

    def __getattr__(self, name: str) -> Node | None:
        try:
            return self[name]
        except KeyError:
            raise AttributeError(name) from None

    def asdict(self) -> Dict[str, Node | None]:
        return {str(var): value
                for var, value in zip(self._variables, self._values)}

    def astuple(self) -> Tuple[Node | None, ...]:
        return self._values

    def __iter__(self) -> Iterator[Node | None]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Row):
            return (self._variables == other._variables
                    and self._values == other._values)
        if isinstance(other, tuple):
            return self._values == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._variables, self._values))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pairs = ", ".join(f"?{var}={value!r}" for var, value
                          in zip(self._variables, self._values))
        return f"Row({pairs})"


class ResultSet:
    """An ordered collection of solution rows with a shared header."""

    def __init__(self, variables: Sequence[Variable],
                 rows: List[Row]) -> None:
        self.variables = tuple(variables)
        self._rows = rows

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __getitem__(self, index: int) -> Row:
        return self._rows[index]

    def __bool__(self) -> bool:
        return bool(self._rows)

    def column(self, variable: str) -> List[Node | None]:
        """All values of one projected variable, in row order."""
        return [row[variable] for row in self._rows]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        header = ", ".join(f"?{v}" for v in self.variables)
        return f"<ResultSet [{header}] ({len(self._rows)} rows)>"
