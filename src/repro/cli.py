"""Command-line interface.

Subcommands::

    python -m repro corpus              # corpus statistics (§4)
    python -m repro build -d INDEXDIR   # run the pipeline, save indexes
    python -m repro search QUERY        # keyword search (built or saved)
    python -m repro merge -d INDEXDIR   # tiered merge of segmented indexes
    python -m repro evaluate            # Tables 4, 5 and 6
    python -m repro ontology            # Fig. 2 class hierarchy
    python -m repro loadtest            # open-loop serving load test
    python -m repro serve -d INDEXDIR   # HTTP service with live ingest

``build`` persists every index under the given directory — JSON by
default, the compact binary format with ``--format binary``, or (with
``--segmented``) immutable mmap'd segment directories built straight
from the ingestion workers (``repro build`` rejects unknown formats
with exit code 2, the user-error code below); ``search --index-dir``
then answers queries without re-running the pipeline — the
offline/online split of §3.5 — auto-detecting whichever format is on
disk.  ``merge`` runs the tiered merge policy over segmented indexes
(documents, doc ids and rankings are unchanged; only segment counts
drop).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import traceback
from pathlib import Path
from typing import List, Optional

from repro.core import (IndexName, KeywordSearchEngine,
                        PhrasalSearchEngine, SemanticRetrievalPipeline)
from repro.core.observability import (Observability, get_observability,
                                      install_observability,
                                      render_metrics)
from repro.errors import ReproError
from repro.evaluation import EvaluationHarness, render_table
from repro.ontology import soccer_ontology
from repro.loadgen import ARRIVAL_PROCESSES, PROFILES
from repro.search import Highlighter, load_index, save_index
from repro.search.index import (DEFAULT_MERGE_FACTOR, INDEX_FORMATS,
                                SEGMENT_DIR_SUFFIX, IndexDirectory,
                                SegmentedIndex)
from repro.soccer import corpus_statistics, standard_corpus

__all__ = ["main", "build_parser",
           "EXIT_OK", "EXIT_USER_ERROR", "EXIT_INTERNAL_ERROR"]

#: exit-code contract: 2 for bad input/environment (fixable by the
#: user), 70 (BSD EX_SOFTWARE) for internal bugs.  KeyboardInterrupt
#: and SystemExit always propagate.
EXIT_OK = 0
EXIT_USER_ERROR = 2
EXIT_INTERNAL_ERROR = 70


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Ontology-based retrieval with semantic indexing "
                    "(paper reproduction).")
    parser.add_argument("--seed", type=int, default=None,
                        help="corpus seed (default: the paper-matched "
                             "seed)")
    parser.add_argument("-w", "--workers", type=int, default=1,
                        help="worker processes for batch ingestion "
                             "(default: 1, serial)")
    parser.add_argument("--profile", action="store_true",
                        help="print per-stage timings and cache hit "
                             "rates after pipeline runs")
    parser.add_argument("--naive-inference", action="store_true",
                        help="run the reasoner's naive fixpoint "
                             "instead of the semi-naive default "
                             "(identical output, slower; the parity "
                             "oracle — see docs/reasoning.md)")
    parser.add_argument("--max-retries", type=int, default=None,
                        metavar="N",
                        help="retries per pipeline stage before a "
                             "match is given up (enables the "
                             "resilience layer; default 2 once "
                             "enabled)")
    parser.add_argument("--stage-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock bound per stage attempt "
                             "(enables the resilience layer)")
    tolerance = parser.add_mutually_exclusive_group()
    tolerance.add_argument("--degrade", action="store_true",
                           help="quarantine matches that exhaust "
                                "their retries and keep indexing the "
                                "survivors")
    tolerance.add_argument("--fail-fast", action="store_true",
                           help="abort the run on the first match "
                                "that exhausts its retries")
    parser.add_argument("--inject-faults", type=Path, default=None,
                        metavar="PLAN.json",
                        help="JSON fault plan for resilience testing "
                             "(see docs/resilience.md)")
    parser.add_argument("--trace", type=Path, default=None,
                        metavar="OUT.json",
                        help="record a span trace of the command and "
                             "write it as JSON (docs/observability.md)")
    parser.add_argument("--metrics", type=Path, default=None,
                        metavar="OUT.prom",
                        help="record metrics and write them on exit "
                             "(.json → JSON, anything else → "
                             "Prometheus text format)")
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("corpus",
                          help="print corpus statistics (§4)")

    build = subparsers.add_parser(
        "build", help="run the pipeline and persist all indexes")
    build.add_argument("-d", "--index-dir", type=Path, required=True,
                       help="directory to write the indexes to")
    build.add_argument("--format", default="json",
                       choices=list(INDEX_FORMATS),
                       help="on-disk index format: 'json' (legacy, "
                            "debuggable) or 'binary' (compact "
                            "delta+varint .ridx, lazy-loading)")
    build.add_argument("--segmented", action="store_true",
                       help="build immutable mmap'd segment "
                            "directories instead of monolithic files; "
                            "ingestion workers seal their own "
                            "segments, so --workers scales (results "
                            "are bit-identical either way)")
    build.add_argument("--segment-size", type=int, default=1,
                       metavar="MATCHES",
                       help="matches per segment with --segmented "
                            "(default: 1)")

    merge = subparsers.add_parser(
        "merge", help="run the tiered merge policy over segmented "
                      "indexes (fewer segments, same documents and "
                      "rankings)")
    merge.add_argument("-d", "--index-dir", type=Path, required=True,
                       help="directory holding <name>.segd indexes")
    merge.add_argument("-i", "--index", default=None,
                       choices=[*IndexName.BUILT],
                       help="merge only this index (default: every "
                            "segmented index found)")
    merge.add_argument("--merge-factor", type=int,
                       default=DEFAULT_MERGE_FACTOR, metavar="N",
                       help="adjacent same-tier segments needed "
                            f"before a merge fires (default: "
                            f"{DEFAULT_MERGE_FACTOR})")
    merge.add_argument("--force", action="store_true",
                       help="collapse each index into one segment "
                            "regardless of tiers")
    merge.add_argument("--vacuum", action="store_true",
                       help="delete superseded segment files and "
                            "manifests after merging")

    search = subparsers.add_parser("search",
                                   help="keyword search over an index")
    search.add_argument("query", help="keyword query text")
    search.add_argument("-i", "--index", default=IndexName.FULL_INF,
                        choices=[*IndexName.LADDER, IndexName.PHR_EXP],
                        help="which index to search")
    search.add_argument("-d", "--index-dir", type=Path, default=None,
                        help="load a saved index instead of rebuilding")
    search.add_argument("-n", "--limit", "--top-k", type=int, default=10,
                        help="number of hits to return; drives the "
                             "pruned top-k scoring path")
    search.add_argument("--phrasal", action="store_true",
                        help="interpret by/to/of phrases (§6; implies "
                             "the PHR_EXP index)")

    subparsers.add_parser("evaluate",
                          help="reproduce Tables 4, 5 and 6")

    loadtest = subparsers.add_parser(
        "loadtest",
        help="open-loop load test of the query-serving path "
             "(docs/performance.md)")
    loadtest.add_argument("-d", "--index-dir", type=Path, default=None,
                          help="load a saved index instead of "
                               "rebuilding (required with --processes)")
    loadtest.add_argument("-i", "--index", default=IndexName.FULL_INF,
                          choices=[*IndexName.LADDER, IndexName.PHR_EXP],
                          help="which index to hammer")
    loadtest.add_argument("--workload", default="cache_hostile",
                          choices=sorted(PROFILES),
                          help="query-mix profile (default: "
                               "cache_hostile, the scoring-path "
                               "stressor)")
    loadtest.add_argument("--requests", type=int, default=500,
                          metavar="N",
                          help="requests per run (default: 500)")
    loadtest.add_argument("--rate", type=float, default=200.0,
                          metavar="QPS",
                          help="offered arrival rate (default: 200)")
    loadtest.add_argument("--arrival", default="poisson",
                          choices=sorted(ARRIVAL_PROCESSES),
                          help="arrival process (default: poisson)")
    loadtest.add_argument("--threads", type=int, default=4,
                          help="worker threads draining the open "
                               "queue (default: 4)")
    loadtest.add_argument("--processes", type=int, default=1,
                          help="shard the load across this many "
                               "worker processes (default: 1, "
                               "in-process threads only)")
    loadtest.add_argument("-n", "--limit", type=int, default=10,
                          help="hits per query (default: 10)")
    loadtest.add_argument("--load-seed", type=int, default=42,
                          metavar="S",
                          help="seed for workload sampling and "
                               "arrival schedule (default: 42; "
                               "distinct from --seed, which shapes "
                               "the corpus)")
    loadtest.add_argument("--sweep", default=None, metavar="R1,R2,…",
                          help="comma-separated offered rates: run "
                               "each and report the saturation point "
                               "instead of a single run")
    loadtest.add_argument("-o", "--output", type=Path, default=None,
                          metavar="OUT.json",
                          help="also write the report as JSON")
    loadtest.add_argument("--http", default=None, metavar="URL",
                          help="drive a running `repro serve` "
                               "instance over HTTP instead of an "
                               "in-process engine (end-to-end "
                               "service latency; --index selects the "
                               "raw index the service searches)")

    serve = subparsers.add_parser(
        "serve",
        help="HTTP/JSON retrieval service with live ingestion "
             "(docs/serving.md)")
    serve.add_argument("-d", "--index-dir", type=Path, required=True,
                       help="a built index directory (segmented "
                            "builds enable POST /ingest)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("-p", "--port", type=int, default=8080,
                       help="bind port; 0 picks an ephemeral one "
                            "(default: 8080)")
    serve.add_argument("--merge-factor", type=int,
                       default=DEFAULT_MERGE_FACTOR,
                       help="tiered merge fan-in for background "
                            f"maintenance (default: "
                            f"{DEFAULT_MERGE_FACTOR})")
    serve.add_argument("--maintenance-interval", type=float,
                       default=5.0, metavar="SECONDS",
                       help="seconds between background merge/vacuum/"
                            "refresh cycles (default: 5)")
    serve.add_argument("--feedback-min-support", type=int, default=3,
                       metavar="N",
                       help="clicks before a feedback association is "
                            "learned (default: 3)")

    subparsers.add_parser("ontology",
                          help="print the Fig. 2 class hierarchy")

    stats = subparsers.add_parser(
        "stats", help="statistics of a saved index, or a readable "
                      "rendering of an exported metrics file")
    stats.add_argument("-i", "--index", default=IndexName.FULL_INF,
                       choices=[*IndexName.LADDER, IndexName.PHR_EXP])
    stats.add_argument("-d", "--index-dir", type=Path, default=None)
    stats.add_argument("--metrics-file", type=Path, default=None,
                       metavar="METRICS.json",
                       help="render a metrics JSON file previously "
                            "exported with --metrics")
    return parser


def _corpus(seed: Optional[int]):
    if seed is None:
        return standard_corpus()
    return standard_corpus(seed=seed)


def _resilience_config(args):
    """A ResilienceConfig from the CLI flags, or None when every
    resilience flag is at its default (the bare fast path)."""
    if (args.max_retries is None and args.stage_timeout is None
            and not args.degrade and not args.fail_fast
            and args.inject_faults is None):
        return None
    from repro.core import FaultPlan, ResilienceConfig, RetryPolicy
    retry = RetryPolicy(
        max_retries=(2 if args.max_retries is None
                     else args.max_retries),
        stage_timeout=args.stage_timeout)
    plan = (FaultPlan.from_file(args.inject_faults)
            if args.inject_faults is not None else None)
    return ResilienceConfig(retry=retry, degrade=not args.fail_fast,
                            fault_plan=plan)


def _run_pipeline(args, corpus):
    """Run the pipeline honoring the --workers/--profile/
    --naive-inference flags and the resilience flags (--max-retries,
    --stage-timeout, --degrade/--fail-fast, --inject-faults)."""
    result = SemanticRetrievalPipeline().run(
        corpus.crawled, workers=args.workers, profile=args.profile,
        resilience=_resilience_config(args),
        naive_inference=args.naive_inference)
    if args.profile and result.profile is not None:
        print()
        print(result.profile.render())
        print()
    if result.quarantine:
        print()
        print(result.quarantine.render())
        print()
    return result


def _command_corpus(args) -> int:
    corpus = _corpus(args.seed)
    stats = corpus_statistics(corpus)
    print(f"matches:    {stats['matches']}")
    print(f"narrations: {stats['narrations']}")
    print(f"events:     {stats['events']}")
    print("\nevents by kind:")
    for key in sorted(stats):
        if key.startswith("kind_"):
            print(f"  {key[5:]:20} {stats[key]:4}")
    return 0


def _command_build(args) -> int:
    corpus = _corpus(args.seed)
    if args.segmented:
        return _build_segmented(args, corpus)
    print(f"building pipeline over {len(corpus.matches)} matches "
          f"with {args.workers} worker(s)…")
    started = time.perf_counter()
    result = _run_pipeline(args, corpus)
    elapsed = time.perf_counter() - started
    print(f"pipeline finished in {elapsed:.1f}s")
    for name, index in result.indexes.items():
        path = save_index(index, args.index_dir, format=args.format)
        print(f"  {name:10} {index.doc_count:5} docs → {path}")
    return 0


def _build_segmented(args, corpus) -> int:
    print(f"building segmented indexes over {len(corpus.matches)} "
          f"matches with {args.workers} worker(s), "
          f"{args.segment_size} match(es) per segment…")
    started = time.perf_counter()
    result = SemanticRetrievalPipeline().run_segmented(
        corpus.crawled, args.index_dir, workers=args.workers,
        segment_size=args.segment_size,
        naive_inference=args.naive_inference)
    elapsed = time.perf_counter() - started
    print(f"pipeline finished in {elapsed:.1f}s")
    try:
        for name, index in result.indexes.items():
            on_disk = sum(info.size_bytes
                          for info in index.segment_infos())
            print(f"  {name:10} {index.doc_count:5} docs in "
                  f"{index.segment_count} segment(s), "
                  f"{on_disk:,} bytes, generation {index.generation} "
                  f"→ {result.directories[name].path}")
    finally:
        result.close()
    return 0


def _command_merge(args) -> int:
    target: Path = args.index_dir
    if args.index is not None:
        names = [args.index]
    else:
        names = sorted(entry.name[:-len(SEGMENT_DIR_SUFFIX)]
                       for entry in target.glob(f"*{SEGMENT_DIR_SUFFIX}")
                       if entry.is_dir())
    if not names:
        print(f"error: no segmented indexes in {target}",
              file=sys.stderr)
        print("hint: build them with 'repro build --segmented "
              f"-d {target}'", file=sys.stderr)
        return EXIT_USER_ERROR
    for name in names:
        path = target / f"{name}{SEGMENT_DIR_SUFFIX}"
        if not path.is_dir():
            print(f"error: no segmented index {name!r} in {target}",
                  file=sys.stderr)
            return EXIT_USER_ERROR
        directory = IndexDirectory(path, name=name)
        merges = directory.merge(merge_factor=args.merge_factor,
                                 force=args.force)
        manifest = directory.manifest()
        line = (f"  {name:10} {merges} merge(s) → "
                f"{len(manifest.segments)} segment(s), "
                f"generation {manifest.generation}")
        if args.vacuum:
            deleted = directory.vacuum()
            line += f", {len(deleted)} file(s) vacuumed"
        print(line)
    return 0


def _command_search(args) -> int:
    index_name = IndexName.PHR_EXP if args.phrasal else args.index
    if args.index_dir is not None:
        # user-input problems only (missing/corrupt files, bad index
        # names); programming errors propagate to main()'s backstop.
        try:
            index = load_index(args.index_dir, index_name)
        except (OSError, ValueError, ReproError) as error:
            print(f"error: {error}", file=sys.stderr)
            print(f"hint: run 'repro build -d {args.index_dir}' first",
                  file=sys.stderr)
            return EXIT_USER_ERROR
    else:
        corpus = _corpus(args.seed)
        result = _run_pipeline(args, corpus)
        index = result.index(index_name)

    if args.phrasal:
        engine = PhrasalSearchEngine(index)
        query_tree = engine.build_query(args.query)
        hits = engine.search(args.query, limit=args.limit)
    else:
        engine = KeywordSearchEngine(index)
        query_tree = engine.build_query(args.query)
        hits = engine.search(args.query, limit=args.limit)

    highlighter = Highlighter()
    print(f"{len(hits)} hits on {index_name} for {args.query!r}:\n")
    for rank, hit in enumerate(hits, start=1):
        print(f"{rank:3}. {hit.score:9.3f}  [{hit.event_type or '-'}]")
        if hit.narration:
            print(f"     {highlighter.highlight(hit.narration, query_tree)}")
    return 0


def _command_evaluate(args) -> int:
    corpus = _corpus(args.seed)
    print("building pipeline…")
    result = _run_pipeline(args, corpus)
    harness = EvaluationHarness(corpus, result)
    print()
    print(render_table(harness.table4(), "Table 4"))
    print()
    print(render_table(harness.table5(), "Table 5", absolute=False))
    print()
    print(render_table(harness.table6(), "Table 6", absolute=False))
    return 0


def _command_loadtest(args) -> int:
    from repro.loadgen import (OpenLoopDriver, arrival_times,
                               build_workload, run_multiprocess,
                               saturation_sweep)
    if args.requests < 1:
        print("error: --requests must be >= 1", file=sys.stderr)
        return EXIT_USER_ERROR
    if args.rate <= 0:
        print("error: --rate must be positive", file=sys.stderr)
        return EXIT_USER_ERROR

    if args.http is not None:
        if args.processes > 1:
            print("error: --http and --processes are mutually "
                  "exclusive", file=sys.stderr)
            return EXIT_USER_ERROR
        if args.index_dir is not None:
            print("error: --http drives a running service; "
                  "--index-dir is for in-process runs", file=sys.stderr)
            return EXIT_USER_ERROR
        from repro.loadgen import (HttpSearchClient, HttpSearchError,
                                   OpenLoopDriver, arrival_times,
                                   build_workload, wait_healthy)
        client = HttpSearchClient(args.http, index=args.index)
        try:
            wait_healthy(args.http, timeout=10.0)
        except HttpSearchError as error:
            print(f"error: {error}", file=sys.stderr)
            print(f"hint: start the service with "
                  f"'repro serve -d INDEXDIR'", file=sys.stderr)
            return EXIT_USER_ERROR
        workload = build_workload(args.workload, args.requests,
                                  seed=args.load_seed)
        arrivals = arrival_times(args.arrival, args.rate,
                                 args.requests, seed=args.load_seed)
        result = OpenLoopDriver(
            client.search, workload.queries, arrivals,
            threads=args.threads, limit=args.limit,
            name=f"http:{args.workload}@{args.rate:g}qps").run()
        return _emit_load_report(result.to_json(), args)

    if args.processes > 1:
        if args.index_dir is None:
            print("error: --processes needs --index-dir (worker "
                  "processes reopen the saved index)", file=sys.stderr)
            return EXIT_USER_ERROR
        if args.sweep is not None:
            print("error: --sweep and --processes are mutually "
                  "exclusive", file=sys.stderr)
            return EXIT_USER_ERROR
        report = run_multiprocess(
            args.index_dir, args.index, args.workload, args.requests,
            args.rate, args.processes, threads=args.threads,
            limit=args.limit, arrival=args.arrival,
            seed=args.load_seed)
        return _emit_load_report(report, args)

    if args.index_dir is not None:
        try:
            index = load_index(args.index_dir, args.index)
        except (OSError, ValueError, ReproError) as error:
            print(f"error: {error}", file=sys.stderr)
            print(f"hint: run 'repro build -d {args.index_dir}' first",
                  file=sys.stderr)
            return EXIT_USER_ERROR
    else:
        corpus = _corpus(args.seed)
        print("building pipeline (pass --index-dir to load a saved "
              "index instead)…", file=sys.stderr)
        index = _run_pipeline(args, corpus).index(args.index)

    try:
        engine = KeywordSearchEngine(index)
        workload = build_workload(args.workload, args.requests,
                                  seed=args.load_seed)

        def run_at(rate):
            arrivals = arrival_times(args.arrival, rate,
                                     args.requests,
                                     seed=args.load_seed)
            return OpenLoopDriver(
                engine.search, workload.queries, arrivals,
                threads=args.threads, limit=args.limit,
                name=f"{args.workload}@{rate:g}qps").run()

        if args.sweep is not None:
            try:
                rates = [float(token) for token
                         in args.sweep.split(",") if token.strip()]
            except ValueError:
                print(f"error: --sweep wants comma-separated numbers, "
                      f"got {args.sweep!r}", file=sys.stderr)
                return EXIT_USER_ERROR
            if not rates:
                print("error: --sweep got no rates", file=sys.stderr)
                return EXIT_USER_ERROR
            report = saturation_sweep(run_at, rates)
            report["workload"] = args.workload
            report["arrival"] = args.arrival
        else:
            report = run_at(args.rate).to_json()
    finally:
        close = getattr(index, "close", None)
        if close is not None and args.index_dir is not None:
            close()
    return _emit_load_report(report, args)


def _emit_load_report(report: dict, args) -> int:
    text = json.dumps(report, indent=2)
    print(text)
    if args.output is not None:
        args.output.write_text(text + "\n")
        print(f"report written to {args.output}", file=sys.stderr)
    return 0


def _command_serve(args) -> int:
    import signal
    from repro.serve import ReproService, ServiceConfig
    if not args.index_dir.exists():
        print(f"error: index directory {args.index_dir} does not "
              f"exist", file=sys.stderr)
        print(f"hint: run 'repro build --segmented -d "
              f"{args.index_dir}' first", file=sys.stderr)
        return EXIT_USER_ERROR

    # the service always meters itself; installing the process-wide
    # registry here folds query-path series (latency, caches,
    # segments) into GET /metrics too.
    previous = None
    if not get_observability().metrics.enabled:
        previous = install_observability(Observability(metrics=True))
    try:
        config = ServiceConfig(
            index_dir=args.index_dir, host=args.host, port=args.port,
            merge_factor=args.merge_factor,
            maintenance_interval=args.maintenance_interval,
            feedback_min_support=args.feedback_min_support)
        # SIGTERM (what `kill` and CI teardown send) must drain the
        # same way Ctrl-C does; so must SIGINT when a non-interactive
        # parent shell launched us with it set to SIG_IGN.
        def _terminate(signum, frame):
            raise KeyboardInterrupt
        signal.signal(signal.SIGTERM, _terminate)
        signal.signal(signal.SIGINT, _terminate)
        with ReproService(config) as service:
            ingest = ("enabled" if service.ingest.directories
                      else "disabled (not a segmented build)")
            print(f"serving {args.index_dir} on {service.url} "
                  f"(indexes: {', '.join(sorted(service.engines))}; "
                  f"live ingest {ingest})", file=sys.stderr)
            print("endpoints: POST /search /feedback /ingest, "
                  "GET /metrics /healthz — Ctrl-C to stop",
                  file=sys.stderr)
            try:
                service.serve_forever()
            except KeyboardInterrupt:
                print("\ndraining…", file=sys.stderr)
        print("stopped", file=sys.stderr)
        return EXIT_OK
    finally:
        if previous is not None:
            install_observability(previous)


def _command_ontology(args) -> int:
    ontology = soccer_ontology()
    print(f"{ontology.class_count} concepts, "
          f"{ontology.property_count} properties\n")

    def walk(uri, depth):
        print("    " * depth + uri.local_name)
        for child in sorted(ontology.direct_subclasses(uri)):
            walk(child, depth + 1)

    for root in sorted(ontology.roots()):
        walk(root, 0)
    return 0


def _query_cache_line(metrics_data: dict) -> Optional[str]:
    """Summarize the query result cache counters of an exported
    metrics document, or None when no cache traffic was recorded."""
    counters = metrics_data.get("counters", {})

    def total(name: str) -> float:
        return sum(entry.get("value", 0) for entry in counters.get(name, []))

    hits = total("query_cache_hits_total")
    misses = total("query_cache_misses_total")
    lookups = hits + misses
    if not lookups:
        return None
    return (f"query cache: {hits:.0f} hits / {misses:.0f} misses "
            f"({hits / lookups:.1%} hit rate)")


def _command_stats(args) -> int:
    from repro.search.stats import collect_stats, render_stats
    if args.index_dir is None and args.metrics_file is None:
        print("error: stats needs --index-dir and/or --metrics-file",
              file=sys.stderr)
        return EXIT_USER_ERROR
    if args.metrics_file is not None:
        try:
            data = json.loads(args.metrics_file.read_text())
            rendered = render_metrics(data)
        except (OSError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return EXIT_USER_ERROR
        print(rendered)
        cache_line = _query_cache_line(data)
        if cache_line:
            print(cache_line)
    if args.index_dir is not None:
        try:
            index = load_index(args.index_dir, args.index)
        except (OSError, ValueError, ReproError) as error:
            print(f"error: {error}", file=sys.stderr)
            return EXIT_USER_ERROR
        print(render_stats(collect_stats(index)))
        if isinstance(index, SegmentedIndex):
            print()
            print(f"segments (generation {index.generation}):")
            for info in index.segment_infos():
                print(f"  {info.file:24} {info.doc_count:>6} docs "
                      f"{info.size_bytes:>12,} bytes")
            index.close()
    return 0


_COMMANDS = {
    "corpus": _command_corpus,
    "build": _command_build,
    "merge": _command_merge,
    "search": _command_search,
    "evaluate": _command_evaluate,
    "loadtest": _command_loadtest,
    "serve": _command_serve,
    "ontology": _command_ontology,
    "stats": _command_stats,
}


def _export_observability(args) -> None:
    obs = get_observability()
    if args.trace is not None:
        args.trace.write_text(
            json.dumps(obs.tracer.to_json(), indent=2) + "\n")
        print(f"trace written to {args.trace}", file=sys.stderr)
    if args.metrics is not None:
        if args.metrics.suffix == ".json":
            text = json.dumps(obs.metrics.to_json(), indent=2) + "\n"
        else:
            text = obs.metrics.to_prometheus()
        args.metrics.write_text(text)
        print(f"metrics written to {args.metrics}", file=sys.stderr)


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    observing = args.trace is not None or args.metrics is not None
    previous = None
    if observing:
        previous = install_observability(Observability(
            tracing=args.trace is not None,
            metrics=args.metrics is not None))
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        # domain errors carry a user-actionable message; internal
        # bugs fall through to the next handler with a traceback.
        # KeyboardInterrupt/SystemExit are BaseExceptions: they
        # propagate past both handlers untouched.
        print(f"error: {error}", file=sys.stderr)
        return EXIT_USER_ERROR
    except Exception:
        traceback.print_exc()
        return EXIT_INTERNAL_ERROR
    finally:
        if observing:
            # export even when the command failed — a partial trace
            # of a crashed run is exactly when you want one.
            _export_observability(args)
            install_observability(previous)


if __name__ == "__main__":       # pragma: no cover - direct execution
    raise SystemExit(main())
