"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class at an API boundary.  Subsystems define
narrower classes here rather than in their own packages to avoid import
cycles between low-level substrates (RDF, search) and higher layers.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TermError(ReproError, ValueError):
    """An RDF term was constructed from an invalid lexical form."""


class GraphError(ReproError):
    """An invalid operation was attempted on an RDF graph."""


class ParseError(ReproError, ValueError):
    """A serialized document (N-Triples, Turtle, SPARQL, rules, query
    strings) could not be parsed.

    Attributes:
        line: 1-based line where the error was detected, if known.
        column: 1-based column where the error was detected, if known.
    """

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None) -> None:
        location = ""
        if line is not None:
            location = f" (line {line}"
            location += f", column {column})" if column is not None else ")"
        super().__init__(message + location)
        self.line = line
        self.column = column


class SparqlError(ReproError):
    """A SPARQL query failed to parse or evaluate."""


class OntologyError(ReproError):
    """The ontology model was built or used inconsistently."""


class ConsistencyError(OntologyError):
    """A knowledge base violates the ontology's constraints.

    Raised by the consistency checker when ``raise_on_error`` is set;
    otherwise violations are reported as data.
    """


class RuleError(ReproError):
    """A forward-chaining rule is malformed or failed during firing."""


class IndexError_(ReproError):
    """An inverted-index operation failed (name avoids builtin clash)."""


class QueryError(ReproError, ValueError):
    """A search query string or query tree is invalid."""


class ExtractionError(ReproError):
    """The information-extraction module met malformed input."""


class PopulationError(ReproError):
    """Ontology population could not map an extracted event."""


class EvaluationError(ReproError):
    """The evaluation harness was misconfigured."""
