"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class at an API boundary.  Subsystems define
narrower classes here rather than in their own packages to avoid import
cycles between low-level substrates (RDF, search) and higher layers.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TermError(ReproError, ValueError):
    """An RDF term was constructed from an invalid lexical form."""


class GraphError(ReproError):
    """An invalid operation was attempted on an RDF graph."""


class ParseError(ReproError, ValueError):
    """A serialized document (N-Triples, Turtle, SPARQL, rules, query
    strings) could not be parsed.

    Attributes:
        line: 1-based line where the error was detected, if known.
        column: 1-based column where the error was detected, if known.
    """

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None) -> None:
        location = ""
        if line is not None:
            location = f" (line {line}"
            location += f", column {column})" if column is not None else ")"
        super().__init__(message + location)
        self.line = line
        self.column = column


class SparqlError(ReproError):
    """A SPARQL query failed to parse or evaluate."""


class OntologyError(ReproError):
    """The ontology model was built or used inconsistently."""


class ConsistencyError(OntologyError):
    """A knowledge base violates the ontology's constraints.

    Raised by the consistency checker when ``raise_on_error`` is set;
    otherwise violations are reported as data.
    """


class RuleError(ReproError):
    """A forward-chaining rule is malformed or failed during firing."""


class IndexError_(ReproError):
    """An inverted-index operation failed (name avoids builtin clash)."""


class QueryError(ReproError, ValueError):
    """A search query string or query tree is invalid."""


class ExtractionError(ReproError):
    """The information-extraction module met malformed input."""


class CrawlError(ReproError):
    """A crawled match artifact is structurally invalid."""


class ResilienceError(ReproError):
    """Base class for the fault-tolerance layer's own failures."""


class InjectedFaultError(ResilienceError):
    """A fault deliberately injected by a :class:`FaultPlan` fired.

    Only ever raised under fault injection (testing); production runs
    never see it unless a plan is attached.
    """

    def __init__(self, stage: str, match_id: str,
                 detail: str = "") -> None:
        suffix = f": {detail}" if detail else ""
        super().__init__(f"injected fault at stage {stage!r} "
                         f"for match {match_id!r}{suffix}")
        self.stage = stage
        self.match_id = match_id
        self.detail = detail

    def __reduce__(self):
        return (type(self), (self.stage, self.match_id, self.detail))


class StageTimeoutError(ResilienceError):
    """A pipeline stage exceeded its configured timeout."""

    def __init__(self, stage: str, match_id: str,
                 timeout: float) -> None:
        super().__init__(f"stage {stage!r} for match {match_id!r} "
                         f"exceeded its {timeout:g}s timeout")
        self.stage = stage
        self.match_id = match_id
        self.timeout = timeout

    def __reduce__(self):
        return (type(self), (self.stage, self.match_id, self.timeout))


class CorruptOutputError(ResilienceError):
    """A pipeline stage returned detectably-invalid output."""


class WorkerCrashError(ResilienceError):
    """A pool worker process died while holding a task.

    In serial (in-process) execution an injected crash raises this
    instead of actually killing the interpreter, so ``workers=1`` and
    ``workers=N`` agree on which matches survive a fault plan.
    """


class MatchProcessingError(ResilienceError):
    """One match permanently failed ingestion (retries exhausted).

    Carries everything the quarantine report records: the match, the
    stage that failed, how many attempts were made, and the final
    underlying error.  The cause is stored as ``(error_type, error)``
    strings so the exception pickles cleanly across the pool's
    process boundary.
    """

    def __init__(self, match_id: str, stage: str, attempts: int,
                 error_type: str, error: str, retries: int = 0,
                 faults_injected: int = 0) -> None:
        super().__init__(
            f"match {match_id!r} failed at stage {stage!r} after "
            f"{attempts} attempt(s): {error_type}: {error}")
        self.match_id = match_id
        self.stage = stage
        self.attempts = attempts
        self.error_type = error_type
        self.error = error
        # retry/fault tallies burned before the match was given up,
        # so quarantined matches still show up in profiler counters
        self.retries = retries
        self.faults_injected = faults_injected

    @classmethod
    def from_exception(cls, match_id: str, stage: str, attempts: int,
                       cause: BaseException, retries: int = 0,
                       faults_injected: int = 0
                       ) -> "MatchProcessingError":
        return cls(match_id, stage, attempts,
                   type(cause).__name__, str(cause),
                   retries=retries, faults_injected=faults_injected)

    def __reduce__(self):
        return (type(self), (self.match_id, self.stage, self.attempts,
                             self.error_type, self.error,
                             self.retries, self.faults_injected))


class PopulationError(ReproError):
    """Ontology population could not map an extracted event."""


class EvaluationError(ReproError):
    """The evaluation harness was misconfigured."""
