"""The soccer domain ontology (paper §3.2, Fig. 2).

The paper's iterative ontology engineering produced **79 concepts and
95 properties**; this module reconstructs a hierarchy with exactly
those counts, covering every concept the evaluation queries exercise:

* the event taxonomy (goals, misses, fouls, punishments, passes, saves,
  set pieces, …) with the positive/negative move split used by Q-7,
* the player-position taxonomy (goalkeeper / defence / midfield /
  forward with concrete positions) used by Q-9 and Q-10,
* the generic ``subjectPlayer`` / ``objectPlayer`` / ``subjectTeam`` /
  ``objectTeam`` properties with event-specific sub-properties that
  decouple IE from the ontology (§3.4),
* the ``actorOf…`` property hierarchy (paper's example: the system
  recognizes ``actorOfMissedGoal``, ``actorOfOffside`` and
  ``actorOfRedCard`` as ``actorOfNegativeMove``),
* the value and cardinality constraints quoted in §3.5 (only
  goalkeepers in the goalkeeping position; one goalkeeper per side).

Use :func:`soccer_ontology` to obtain the singleton TBox.
"""

from __future__ import annotations

from functools import lru_cache

from repro.rdf.namespace import SOCCER, XSD
from repro.ontology.builder import OntologyBuilder
from repro.ontology.model import Ontology

__all__ = [
    "SOCCER",
    "soccer_ontology",
    "CLASS_COUNT",
    "PROPERTY_COUNT",
]

#: Published figures from §3.2.
CLASS_COUNT = 79
PROPERTY_COUNT = 95


@lru_cache(maxsize=1)
def soccer_ontology() -> Ontology:
    """Build (once) and return the shared soccer TBox."""
    b = OntologyBuilder(SOCCER, name="soccer")

    # ------------------------------------------------------------------
    # agents: teams, people, roles                                (28)
    # ------------------------------------------------------------------
    agent = b.klass("Agent", comment="Anything that can act in a match.")
    person = b.klass("Person", agent)
    team = b.klass("Team", agent)
    b.klass("ClubTeam", team)
    b.klass("NationalTeam", team)

    player = b.klass("Player", person)
    goalkeeper = b.klass("Goalkeeper", player)
    defence = b.klass("DefencePlayer", player)
    b.klass("LeftBack", defence)
    b.klass("RightBack", defence)
    b.klass("CentreBack", defence)
    b.klass("Sweeper", defence)
    midfield = b.klass("MidfieldPlayer", player)
    b.klass("DefensiveMidfielder", midfield)
    b.klass("CentralMidfielder", midfield)
    b.klass("AttackingMidfielder", midfield)
    b.klass("LeftWinger", midfield)
    b.klass("RightWinger", midfield)
    forward = b.klass("ForwardPlayer", player)
    b.klass("CentreForward", forward)
    b.klass("Striker", forward)

    official = b.klass("Official", person)
    referee = b.klass("Referee", official)
    b.klass("AssistantReferee", official)
    b.klass("FourthOfficial", official)
    staff = b.klass("StaffMember", person)
    coach = b.klass("Coach", staff)
    b.klass("Manager", staff)

    # ------------------------------------------------------------------
    # competition structure                                        (9)
    # ------------------------------------------------------------------
    competition = b.klass("Competition")
    b.klass("League", competition)
    b.klass("Cup", competition)
    season = b.klass("Season")
    round_ = b.klass("Round")
    match = b.klass("Match")
    stadium = b.klass("Stadium")
    city = b.klass("City")
    country = b.klass("Country")

    # ------------------------------------------------------------------
    # events                                                      (42)
    # ------------------------------------------------------------------
    event = b.klass("Event", comment="Anything that happens in a match.")
    positive = b.klass("PositiveEvent", event)
    negative = b.klass("NegativeEvent", event)
    ball_event = b.klass("BallEvent", event)

    pass_ = b.klass("Pass", ball_event, positive)
    b.klass("LongPass", pass_)
    b.klass("ShortPass", pass_)
    cross = b.klass("Cross", pass_)
    shoot = b.klass("Shoot", ball_event)
    b.klass("Header", ball_event)
    goal = b.klass("Goal", shoot, positive)
    own_goal = b.klass("OwnGoal", goal)
    b.klass("PenaltyGoal", goal)
    missed_goal = b.klass("MissedGoal", shoot, negative,
                          label="Miss",
                          comment="A shot that fails to score.")
    save = b.klass("Save", ball_event, positive)
    tackle = b.klass("Tackle", ball_event)
    dribble = b.klass("Dribble", ball_event, positive)
    b.klass("Clearance", ball_event)
    b.klass("Interception", ball_event, positive)
    assist = b.klass("Assist", ball_event, positive)

    set_piece = b.klass("SetPiece", ball_event)
    corner = b.klass("Corner", set_piece)
    free_kick = b.klass("FreeKick", set_piece)
    penalty = b.klass("Penalty", set_piece)
    b.klass("ThrowIn", set_piece)
    b.klass("GoalKick", set_piece)

    violation = b.klass("RuleViolation", negative)
    foul = b.klass("Foul", violation)
    b.klass("Handball", violation)
    offside = b.klass("Offside", violation)
    punishment = b.klass("Punishment", negative)
    yellow = b.klass("YellowCard", punishment)
    red = b.klass("RedCard", punishment)
    b.klass("SecondYellowCard", yellow)

    substitution = b.klass("Substitution", event)
    injury = b.klass("Injury", negative)

    phase = b.klass("MatchPhaseEvent", event)
    b.klass("KickOff", phase)
    b.klass("HalfTime", phase)
    b.klass("FullTime", phase)
    b.klass("ExtraTime", phase)

    b.klass("UnknownEvent", event,
            comment="A narration the IE module could not classify (§3.4).")

    # disjointness used by the consistency checker
    b.disjoint(person, team)
    b.disjoint(player, official)
    b.disjoint(goalkeeper, defence)
    b.disjoint(goalkeeper, midfield)
    b.disjoint(goalkeeper, forward)
    b.disjoint(event, match)
    b.disjoint(yellow, red)

    # ------------------------------------------------------------------
    # generic event-role properties (§3.4)                         (4)
    # ------------------------------------------------------------------
    subject_player = b.object_property(
        "subjectPlayer", domain=event, range=player,
        comment="The player performing the event (generic role).")
    object_player = b.object_property(
        "objectPlayer", domain=event, range=player,
        comment="The player the event is done to (generic role).")
    subject_team = b.object_property(
        "subjectTeam", domain=event, range=team)
    object_team = b.object_property(
        "objectTeam", domain=event, range=team)

    # ------------------------------------------------------------------
    # event core properties                                        (4)
    # ------------------------------------------------------------------
    b.object_property("inMatch", domain=event, range=match, functional=True)
    b.data_property("inMinute", domain=event, range=XSD.integer,
                    functional=True)
    b.data_property("hasNarration", domain=event, range=XSD.string)
    b.data_property("hasEventId", domain=event, range=XSD.string,
                    functional=True)

    # ------------------------------------------------------------------
    # subjectPlayer sub-properties                                (23)
    # ------------------------------------------------------------------
    b.object_property("scorerPlayer", parents=[subject_player],
                      domain=goal, range=player)
    b.object_property("missingPlayer", parents=[subject_player],
                      domain=missed_goal, range=player)
    passing = b.object_property("passingPlayer", parents=[subject_player],
                                domain=pass_, range=player)
    b.object_property("crossingPlayer", parents=[passing],
                      domain=cross, range=player)
    b.object_property("shootingPlayer", parents=[subject_player],
                      domain=shoot, range=player)
    b.object_property("headingPlayer", parents=[subject_player],
                      range=player)
    b.object_property("savingGoalkeeper", parents=[subject_player],
                      domain=save, range=goalkeeper,
                      comment="Only goalkeepers may occupy the "
                              "goalkeeping position (§3.5).")
    b.object_property("foulingPlayer", parents=[subject_player],
                      domain=foul, range=player)
    b.object_property("handballPlayer", parents=[subject_player],
                      range=player)
    b.object_property("offsidePlayer", parents=[subject_player],
                      domain=offside, range=player)
    punished = b.object_property("punishedPlayer", parents=[subject_player],
                                 domain=punishment, range=player)
    b.object_property("bookedPlayer", parents=[punished],
                      domain=yellow, range=player)
    b.object_property("sentOffPlayer", parents=[punished],
                      domain=red, range=player)
    b.object_property("tacklingPlayer", parents=[subject_player],
                      domain=tackle, range=player)
    b.object_property("dribblingPlayer", parents=[subject_player],
                      domain=dribble, range=player)
    b.object_property("clearingPlayer", parents=[subject_player],
                      range=player)
    b.object_property("interceptingPlayer", parents=[subject_player],
                      range=player)
    b.object_property("assistingPlayer", parents=[subject_player],
                      domain=assist, range=player)
    taker = b.object_property("takerPlayer", parents=[subject_player],
                              domain=set_piece, range=player)
    b.object_property("cornerTaker", parents=[taker],
                      domain=corner, range=player)
    b.object_property("freeKickTaker", parents=[taker],
                      domain=free_kick, range=player)
    b.object_property("penaltyTaker", parents=[taker],
                      domain=penalty, range=player)
    b.object_property("substitutedInPlayer", parents=[subject_player],
                      domain=substitution, range=player)

    # ------------------------------------------------------------------
    # objectPlayer sub-properties                                  (8)
    # ------------------------------------------------------------------
    b.object_property("passReceiver", parents=[object_player],
                      domain=pass_, range=player)
    b.object_property("fouledPlayer", parents=[object_player],
                      domain=foul, range=player)
    b.object_property("injuredPlayer", parents=[object_player],
                      domain=injury, range=player)
    b.object_property("tackledPlayer", parents=[object_player],
                      domain=tackle, range=player)
    b.object_property("beatenGoalkeeper", parents=[object_player],
                      domain=goal, range=goalkeeper,
                      comment="Filled by the scored-to rule; backs Q-6.")
    b.object_property("savedShooter", parents=[object_player],
                      domain=save, range=player)
    b.object_property("substitutedOutPlayer", parents=[object_player],
                      domain=substitution, range=player)
    b.object_property("dribbledPlayer", parents=[object_player],
                      domain=dribble, range=player)

    # ------------------------------------------------------------------
    # team role sub-properties                                     (4)
    # ------------------------------------------------------------------
    b.object_property("scoringTeam", parents=[subject_team],
                      domain=goal, range=team)
    b.object_property("concedingTeam", parents=[object_team],
                      domain=goal, range=team)
    b.object_property("foulingTeam", parents=[subject_team],
                      domain=foul, range=team)
    b.object_property("substitutingTeam", parents=[subject_team],
                      domain=substitution, range=team)

    # ------------------------------------------------------------------
    # actorOf… hierarchy (player → event; §4, query Q-7)          (15)
    # ------------------------------------------------------------------
    actor = b.object_property("actorOfMove", domain=player, range=event)
    actor_neg = b.object_property("actorOfNegativeMove", parents=[actor],
                                  domain=player, range=negative)
    actor_pos = b.object_property("actorOfPositiveMove", parents=[actor],
                                  domain=player, range=positive)
    b.object_property("actorOfMissedGoal", parents=[actor_neg],
                      domain=player, range=missed_goal)
    b.object_property("actorOfOffside", parents=[actor_neg],
                      domain=player, range=offside)
    b.object_property("actorOfRedCard", parents=[actor_neg],
                      domain=player, range=red)
    b.object_property("actorOfYellowCard", parents=[actor_neg],
                      domain=player, range=yellow)
    b.object_property("actorOfFoul", parents=[actor_neg],
                      domain=player, range=foul)
    b.object_property("actorOfOwnGoal", parents=[actor_neg],
                      domain=player, range=own_goal)
    b.object_property("actorOfGoal", parents=[actor_pos],
                      domain=player, range=goal)
    b.object_property("actorOfAssist", parents=[actor_pos],
                      domain=player, range=assist)
    b.object_property("actorOfSave", parents=[actor_pos],
                      domain=player, range=save)
    b.object_property("actorOfPass", parents=[actor_pos],
                      domain=player, range=pass_)
    b.object_property("actorOfTackle", parents=[actor_pos],
                      domain=player, range=tackle)
    b.object_property("actorOfDribble", parents=[actor_pos],
                      domain=player, range=dribble)

    # ------------------------------------------------------------------
    # player biography                                             (8)
    # ------------------------------------------------------------------
    plays_for = b.object_property("playsFor", domain=player, range=team)
    b.object_property("captainOf", domain=player, range=team)
    b.object_property("nationality", domain=person, range=country)
    b.data_property("hasName", domain=agent, range=XSD.string)
    b.data_property("hasFirstName", domain=person, range=XSD.string)
    b.data_property("hasLastName", domain=person, range=XSD.string)
    b.data_property("wearsShirtNumber", domain=player, range=XSD.integer,
                    functional=True)
    b.data_property("birthDate", domain=person, range=XSD.date)

    # ------------------------------------------------------------------
    # team structure                                               (6)
    # ------------------------------------------------------------------
    b.object_property("hasPlayer", domain=team, range=player,
                      inverse_of=plays_for)
    b.object_property("hasGoalkeeper", domain=team, range=goalkeeper,
                      comment="Exactly one goalkeeper per side (§3.5).")
    b.object_property("homeStadium", domain=team, range=stadium)
    b.object_property("hasCoach", domain=team, range=coach)
    b.object_property("basedIn", domain=team, range=city)
    b.data_property("foundedYear", domain=team, range=XSD.integer)

    # ------------------------------------------------------------------
    # match structure                                             (12)
    # ------------------------------------------------------------------
    b.object_property("homeTeam", domain=match, range=team, functional=True)
    b.object_property("awayTeam", domain=match, range=team, functional=True)
    b.object_property("playedAt", domain=match, range=stadium,
                      functional=True)
    b.object_property("refereedBy", domain=match, range=referee)
    b.object_property("inCompetition", domain=match, range=competition)
    b.object_property("inSeason", domain=match, range=season)
    b.object_property("inRound", domain=match, range=round_)
    b.data_property("onDate", domain=match, range=XSD.date, functional=True)
    b.data_property("kickOffTime", domain=match, range=XSD.string)
    b.data_property("homeScore", domain=match, range=XSD.integer)
    b.data_property("awayScore", domain=match, range=XSD.integer)
    b.data_property("attendance", domain=match, range=XSD.integer)

    # ------------------------------------------------------------------
    # places                                                       (3)
    # ------------------------------------------------------------------
    b.object_property("locatedIn", domain=stadium, range=city)
    b.object_property("inCountry", domain=city, range=country)
    b.data_property("stadiumCapacity", domain=stadium, range=XSD.integer)

    # ------------------------------------------------------------------
    # event details                                                (8)
    # ------------------------------------------------------------------
    b.object_property("fromSetPiece", domain=goal, range=set_piece)
    b.object_property("assistedGoal", domain=assist, range=goal)
    b.data_property("hasHalf", domain=event, range=XSD.integer)
    b.data_property("addedTime", domain=event, range=XSD.integer)
    b.data_property("inStoppageTime", domain=event, range=XSD.boolean)
    b.data_property("cardColor", domain=punishment, range=XSD.string)
    b.data_property("injurySeverity", domain=injury, range=XSD.string)
    b.data_property("substitutionReason", domain=substitution,
                    range=XSD.string)

    # ------------------------------------------------------------------
    # restrictions quoted in §3.5
    # ------------------------------------------------------------------
    b.all_values_from(save, "savingGoalkeeper", goalkeeper)
    b.all_values_from(team, "hasGoalkeeper", goalkeeper)
    b.max_cardinality(team, "hasGoalkeeper", 1)
    b.cardinality(match, "homeTeam", 1)
    b.cardinality(match, "awayTeam", 1)
    b.all_values_from(goal, "beatenGoalkeeper", goalkeeper)
    b.max_cardinality(event, "inMatch", 1)

    ontology = b.build()
    assert ontology.class_count == CLASS_COUNT, ontology.class_count
    assert ontology.property_count == PROPERTY_COUNT, ontology.property_count
    return ontology
