"""OWL-ish ontology model: classes, properties, restrictions, individuals.

The model is deliberately close to the fragment of OWL-DL the paper's
system exercises (§3.2, §3.5):

* named classes in a multiple-inheritance subclass hierarchy,
* object/data properties in a sub-property hierarchy with domain and
  range declarations,
* value constraints (``allValuesFrom`` / ``someValuesFrom`` /
  ``hasValue``) and cardinality constraints (min/max/exact) attached to
  classes,
* class disjointness,
* individuals with asserted types and property values.

Reasoning (classification, realization, consistency) lives in
:mod:`repro.reasoning`; this module is pure structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Union

from repro.errors import OntologyError
from repro.rdf.term import Node, URIRef

__all__ = [
    "OntClass",
    "PropertyKind",
    "OntProperty",
    "RestrictionKind",
    "Restriction",
    "Individual",
    "Ontology",
]


@dataclass
class OntClass:
    """A named class (concept).

    Attributes:
        uri: the class IRI.
        parents: IRIs of *direct* superclasses.
        label: human-readable name; defaults to the IRI local name.
        disjoint_with: IRIs of classes declared disjoint with this one.
        comment: documentation string.
    """

    uri: URIRef
    parents: Set[URIRef] = field(default_factory=set)
    label: str = ""
    disjoint_with: Set[URIRef] = field(default_factory=set)
    comment: str = ""

    def __post_init__(self) -> None:
        if not self.label:
            self.label = self.uri.local_name

    def __hash__(self) -> int:
        return hash(self.uri)


class PropertyKind:
    """Property kind constants."""

    OBJECT = "object"
    DATA = "data"


@dataclass
class OntProperty:
    """An object or datatype property.

    Attributes:
        uri: the property IRI.
        kind: :data:`PropertyKind.OBJECT` or :data:`PropertyKind.DATA`.
        parents: IRIs of direct super-properties.
        domain: class IRI the subject must belong to (optional).
        range: class IRI (object properties) or datatype IRI (data
            properties) the value must belong to (optional).
        functional: at most one value per subject.
        inverse_of: IRI of the declared inverse property, if any.
    """

    uri: URIRef
    kind: str = PropertyKind.OBJECT
    parents: Set[URIRef] = field(default_factory=set)
    domain: Optional[URIRef] = None
    range: Optional[URIRef] = None
    functional: bool = False
    inverse_of: Optional[URIRef] = None
    label: str = ""
    comment: str = ""

    def __post_init__(self) -> None:
        if self.kind not in (PropertyKind.OBJECT, PropertyKind.DATA):
            raise OntologyError(f"unknown property kind {self.kind!r}")
        if not self.label:
            self.label = self.uri.local_name

    def __hash__(self) -> int:
        return hash(self.uri)


class RestrictionKind:
    """OWL restriction kinds supported by the reasoner."""

    ALL_VALUES_FROM = "allValuesFrom"
    SOME_VALUES_FROM = "someValuesFrom"
    HAS_VALUE = "hasValue"
    MIN_CARDINALITY = "minCardinality"
    MAX_CARDINALITY = "maxCardinality"
    CARDINALITY = "cardinality"

    ALL = (ALL_VALUES_FROM, SOME_VALUES_FROM, HAS_VALUE,
           MIN_CARDINALITY, MAX_CARDINALITY, CARDINALITY)


@dataclass(frozen=True)
class Restriction:
    """A property restriction attached to a class.

    ``filler`` is a class IRI for value restrictions, a concrete node
    for ``hasValue`` and an integer for cardinality restrictions.
    """

    on_class: URIRef
    on_property: URIRef
    kind: str
    filler: Union[URIRef, Node, int]

    def __post_init__(self) -> None:
        if self.kind not in RestrictionKind.ALL:
            raise OntologyError(f"unknown restriction kind {self.kind!r}")
        cardinal = self.kind in (RestrictionKind.MIN_CARDINALITY,
                                 RestrictionKind.MAX_CARDINALITY,
                                 RestrictionKind.CARDINALITY)
        if cardinal and not isinstance(self.filler, int):
            raise OntologyError("cardinality restriction needs an integer")
        if cardinal and isinstance(self.filler, int) and self.filler < 0:
            raise OntologyError("cardinality must be non-negative")


@dataclass
class Individual:
    """An ABox individual: asserted types plus property values."""

    uri: URIRef
    types: Set[URIRef] = field(default_factory=set)
    properties: Dict[URIRef, List[Node]] = field(default_factory=dict)

    def add(self, prop: URIRef, value: Node) -> None:
        values = self.properties.setdefault(prop, [])
        if value not in values:
            values.append(value)

    def get(self, prop: URIRef) -> List[Node]:
        return self.properties.get(prop, [])

    def first(self, prop: URIRef) -> Optional[Node]:
        values = self.properties.get(prop)
        return values[0] if values else None

    def __hash__(self) -> int:
        return hash(self.uri)


class Ontology:
    """Container for a TBox (classes, properties, restrictions) and an
    optional ABox (individuals).

    The paper keeps one shared TBox (the soccer ontology) and many
    small, independent ABoxes (one per match); this class supports both
    roles — :meth:`spawn_abox` creates an individual-free view sharing
    the TBox.
    """

    def __init__(self, name: str = "ontology") -> None:
        self.name = name
        self._classes: Dict[URIRef, OntClass] = {}
        self._properties: Dict[URIRef, OntProperty] = {}
        self._restrictions: List[Restriction] = []
        self._individuals: Dict[URIRef, Individual] = {}

    # ------------------------------------------------------------------
    # TBox construction
    # ------------------------------------------------------------------

    def add_class(self, cls: OntClass) -> OntClass:
        if cls.uri in self._classes:
            raise OntologyError(f"duplicate class {cls.uri}")
        self._classes[cls.uri] = cls
        return cls

    def add_property(self, prop: OntProperty) -> OntProperty:
        if prop.uri in self._properties:
            raise OntologyError(f"duplicate property {prop.uri}")
        self._properties[prop.uri] = prop
        return prop

    def add_restriction(self, restriction: Restriction) -> Restriction:
        if restriction.on_class not in self._classes:
            raise OntologyError(
                f"restriction on unknown class {restriction.on_class}")
        if restriction.on_property not in self._properties:
            raise OntologyError(
                f"restriction on unknown property {restriction.on_property}")
        self._restrictions.append(restriction)
        return restriction

    def validate(self) -> None:
        """Check TBox referential integrity (parents, domains, ranges).

        Raises :class:`OntologyError` on the first dangling reference.
        """
        for cls in self._classes.values():
            for parent in cls.parents:
                if parent not in self._classes:
                    raise OntologyError(
                        f"class {cls.uri} has unknown parent {parent}")
            for other in cls.disjoint_with:
                if other not in self._classes:
                    raise OntologyError(
                        f"class {cls.uri} disjoint with unknown {other}")
        for prop in self._properties.values():
            for parent in prop.parents:
                if parent not in self._properties:
                    raise OntologyError(
                        f"property {prop.uri} has unknown parent {parent}")
                if self._properties[parent].kind != prop.kind:
                    raise OntologyError(
                        f"property {prop.uri} and parent {parent} "
                        f"differ in kind")
            if prop.domain is not None and prop.domain not in self._classes:
                raise OntologyError(
                    f"property {prop.uri} has unknown domain {prop.domain}")
            if (prop.kind == PropertyKind.OBJECT and prop.range is not None
                    and prop.range not in self._classes):
                raise OntologyError(
                    f"property {prop.uri} has unknown range {prop.range}")
            if prop.inverse_of is not None \
                    and prop.inverse_of not in self._properties:
                raise OntologyError(
                    f"property {prop.uri} has unknown inverse "
                    f"{prop.inverse_of}")

    # ------------------------------------------------------------------
    # TBox access
    # ------------------------------------------------------------------

    def classes(self) -> Iterator[OntClass]:
        return iter(self._classes.values())

    def properties(self) -> Iterator[OntProperty]:
        return iter(self._properties.values())

    def restrictions(self, on_class: URIRef | None = None
                     ) -> Iterator[Restriction]:
        for restriction in self._restrictions:
            if on_class is None or restriction.on_class == on_class:
                yield restriction

    def get_class(self, uri: URIRef) -> OntClass:
        try:
            return self._classes[uri]
        except KeyError:
            raise OntologyError(f"unknown class {uri}") from None

    def get_property(self, uri: URIRef) -> OntProperty:
        try:
            return self._properties[uri]
        except KeyError:
            raise OntologyError(f"unknown property {uri}") from None

    def has_class(self, uri: URIRef) -> bool:
        return uri in self._classes

    def has_property(self, uri: URIRef) -> bool:
        return uri in self._properties

    @property
    def class_count(self) -> int:
        return len(self._classes)

    @property
    def property_count(self) -> int:
        return len(self._properties)

    def direct_subclasses(self, uri: URIRef) -> List[URIRef]:
        return [cls.uri for cls in self._classes.values()
                if uri in cls.parents]

    def direct_subproperties(self, uri: URIRef) -> List[URIRef]:
        return [prop.uri for prop in self._properties.values()
                if uri in prop.parents]

    def roots(self) -> List[URIRef]:
        """Classes with no parents (hierarchy roots)."""
        return [cls.uri for cls in self._classes.values() if not cls.parents]

    # ------------------------------------------------------------------
    # ABox
    # ------------------------------------------------------------------

    def add_individual(self, individual: Individual) -> Individual:
        existing = self._individuals.get(individual.uri)
        if existing is not None:
            existing.types |= individual.types
            for prop, values in individual.properties.items():
                for value in values:
                    existing.add(prop, value)
            return existing
        self._individuals[individual.uri] = individual
        return individual

    def individual(self, uri: URIRef) -> Individual:
        try:
            return self._individuals[uri]
        except KeyError:
            raise OntologyError(f"unknown individual {uri}") from None

    def has_individual(self, uri: URIRef) -> bool:
        return uri in self._individuals

    def individuals(self, of_type: URIRef | None = None
                    ) -> Iterator[Individual]:
        for individual in self._individuals.values():
            if of_type is None or of_type in individual.types:
                yield individual

    @property
    def individual_count(self) -> int:
        return len(self._individuals)

    def spawn_abox(self, name: str) -> "Ontology":
        """Create a new ontology sharing this TBox with an empty ABox.

        The shared TBox is what makes per-match models cheap: schema
        objects are referenced, not copied, mirroring the paper's
        "world as small independent models" design (§1, §3.5).
        """
        view = Ontology(name)
        view._classes = self._classes
        view._properties = self._properties
        view._restrictions = self._restrictions
        return view

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Ontology {self.name!r}: {self.class_count} classes, "
                f"{self.property_count} properties, "
                f"{self.individual_count} individuals>")
