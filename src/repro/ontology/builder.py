"""Fluent construction API for ontologies.

The paper describes an iterative ontology-engineering process (§3.2);
this builder keeps the resulting definition code declarative and
readable — see :mod:`repro.ontology.soccer` for the full domain
ontology built with it.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

from repro.rdf.namespace import Namespace
from repro.rdf.term import Node, URIRef
from repro.ontology.model import (Individual, OntClass, Ontology,
                                  OntProperty, PropertyKind, Restriction,
                                  RestrictionKind)

__all__ = ["OntologyBuilder"]

ClassRef = Union[URIRef, OntClass, str]
PropertyRef = Union[URIRef, OntProperty, str]


class OntologyBuilder:
    """Builds an :class:`~repro.ontology.model.Ontology` incrementally.

    All reference arguments accept a URIRef, a model object or a bare
    local name (resolved against the builder's namespace).
    """

    def __init__(self, namespace: Namespace, name: str = "ontology") -> None:
        self.namespace = namespace
        self.ontology = Ontology(name)

    # ------------------------------------------------------------------
    # reference resolution
    # ------------------------------------------------------------------

    def _class_uri(self, ref: ClassRef) -> URIRef:
        if isinstance(ref, OntClass):
            return ref.uri
        if isinstance(ref, URIRef):
            return ref
        return self.namespace.term(ref)

    def _property_uri(self, ref: PropertyRef) -> URIRef:
        if isinstance(ref, OntProperty):
            return ref.uri
        if isinstance(ref, URIRef):
            return ref
        return self.namespace.term(ref)

    # ------------------------------------------------------------------
    # TBox
    # ------------------------------------------------------------------

    def klass(self, name: str, *parents: ClassRef,
              label: str = "", comment: str = "") -> OntClass:
        """Declare a class, optionally under one or more parents."""
        cls = OntClass(
            uri=self.namespace.term(name),
            parents={self._class_uri(p) for p in parents},
            label=label,
            comment=comment,
        )
        return self.ontology.add_class(cls)

    def object_property(self, name: str, *,
                        parents: Iterable[PropertyRef] = (),
                        domain: Optional[ClassRef] = None,
                        range: Optional[ClassRef] = None,
                        functional: bool = False,
                        inverse_of: Optional[PropertyRef] = None,
                        label: str = "", comment: str = "") -> OntProperty:
        prop = OntProperty(
            uri=self.namespace.term(name),
            kind=PropertyKind.OBJECT,
            parents={self._property_uri(p) for p in parents},
            domain=self._class_uri(domain) if domain is not None else None,
            range=self._class_uri(range) if range is not None else None,
            functional=functional,
            inverse_of=(self._property_uri(inverse_of)
                        if inverse_of is not None else None),
            label=label,
            comment=comment,
        )
        return self.ontology.add_property(prop)

    def data_property(self, name: str, *,
                      parents: Iterable[PropertyRef] = (),
                      domain: Optional[ClassRef] = None,
                      range: Optional[URIRef] = None,
                      functional: bool = False,
                      label: str = "", comment: str = "") -> OntProperty:
        prop = OntProperty(
            uri=self.namespace.term(name),
            kind=PropertyKind.DATA,
            parents={self._property_uri(p) for p in parents},
            domain=self._class_uri(domain) if domain is not None else None,
            range=range,
            functional=functional,
            label=label,
            comment=comment,
        )
        return self.ontology.add_property(prop)

    def disjoint(self, first: ClassRef, second: ClassRef) -> None:
        """Declare two classes mutually disjoint."""
        first_uri = self._class_uri(first)
        second_uri = self._class_uri(second)
        self.ontology.get_class(first_uri).disjoint_with.add(second_uri)
        self.ontology.get_class(second_uri).disjoint_with.add(first_uri)

    def all_values_from(self, on_class: ClassRef, on_property: PropertyRef,
                        filler: ClassRef) -> Restriction:
        return self.ontology.add_restriction(Restriction(
            self._class_uri(on_class), self._property_uri(on_property),
            RestrictionKind.ALL_VALUES_FROM, self._class_uri(filler)))

    def some_values_from(self, on_class: ClassRef, on_property: PropertyRef,
                         filler: ClassRef) -> Restriction:
        return self.ontology.add_restriction(Restriction(
            self._class_uri(on_class), self._property_uri(on_property),
            RestrictionKind.SOME_VALUES_FROM, self._class_uri(filler)))

    def has_value(self, on_class: ClassRef, on_property: PropertyRef,
                  value: Node) -> Restriction:
        return self.ontology.add_restriction(Restriction(
            self._class_uri(on_class), self._property_uri(on_property),
            RestrictionKind.HAS_VALUE, value))

    def cardinality(self, on_class: ClassRef, on_property: PropertyRef,
                    exactly: int) -> Restriction:
        return self.ontology.add_restriction(Restriction(
            self._class_uri(on_class), self._property_uri(on_property),
            RestrictionKind.CARDINALITY, exactly))

    def max_cardinality(self, on_class: ClassRef, on_property: PropertyRef,
                        at_most: int) -> Restriction:
        return self.ontology.add_restriction(Restriction(
            self._class_uri(on_class), self._property_uri(on_property),
            RestrictionKind.MAX_CARDINALITY, at_most))

    def min_cardinality(self, on_class: ClassRef, on_property: PropertyRef,
                        at_least: int) -> Restriction:
        return self.ontology.add_restriction(Restriction(
            self._class_uri(on_class), self._property_uri(on_property),
            RestrictionKind.MIN_CARDINALITY, at_least))

    # ------------------------------------------------------------------
    # ABox
    # ------------------------------------------------------------------

    def individual(self, name: str, *types: ClassRef) -> Individual:
        ind = Individual(
            uri=self.namespace.term(name),
            types={self._class_uri(t) for t in types},
        )
        return self.ontology.add_individual(ind)

    # ------------------------------------------------------------------
    # finish
    # ------------------------------------------------------------------

    def build(self) -> Ontology:
        """Validate and return the finished ontology."""
        self.ontology.validate()
        return self.ontology
