"""Ontology reference documentation generator.

Produces a Markdown reference of an ontology — class hierarchy with
comments, property tables with domain/range/characteristics, and the
restriction list — so the TBox (the system's shared contract, §3.2)
is reviewable without reading builder code.  The repository's
``docs/ontology.md`` is generated from here.
"""

from __future__ import annotations

from typing import List

from repro.ontology.model import Ontology, PropertyKind
from repro.rdf.term import Literal, URIRef

__all__ = ["generate_markdown"]


def _class_anchor(uri: URIRef) -> str:
    return uri.local_name


def _render_hierarchy(ontology: Ontology, uri: URIRef, depth: int,
                      lines: List[str]) -> None:
    cls = ontology.get_class(uri)
    label = f"**{cls.uri.local_name}**"
    if cls.label != cls.uri.local_name:
        label += f" (\"{cls.label}\")"
    suffix = f" — {cls.comment}" if cls.comment else ""
    lines.append(f"{'  ' * depth}- {label}{suffix}")
    for child in sorted(ontology.direct_subclasses(uri)):
        _render_hierarchy(ontology, child, depth + 1, lines)


def _render_filler(filler) -> str:
    if isinstance(filler, URIRef):
        return filler.local_name
    if isinstance(filler, Literal):
        return filler.lexical
    return str(filler)


def generate_markdown(ontology: Ontology,
                      title: str = "Ontology reference") -> str:
    """Render the full TBox as a Markdown document."""
    lines: List[str] = [f"# {title}", ""]
    lines.append(f"{ontology.class_count} classes, "
                 f"{ontology.property_count} properties, "
                 f"{sum(1 for _ in ontology.restrictions())} "
                 f"restrictions.")
    lines.append("")

    # ------------------------------------------------------ hierarchy
    lines.append("## Class hierarchy")
    lines.append("")
    for root in sorted(ontology.roots()):
        _render_hierarchy(ontology, root, 0, lines)
    lines.append("")

    # --------------------------------------------------- disjointness
    disjoint_pairs = set()
    for cls in ontology.classes():
        for other in cls.disjoint_with:
            disjoint_pairs.add(tuple(sorted((cls.uri.local_name,
                                             other.local_name))))
    if disjoint_pairs:
        lines.append("## Disjoint classes")
        lines.append("")
        for first, second in sorted(disjoint_pairs):
            lines.append(f"- {first} ⊥ {second}")
        lines.append("")

    # ----------------------------------------------------- properties
    for kind, heading in ((PropertyKind.OBJECT, "Object properties"),
                          (PropertyKind.DATA, "Data properties")):
        properties = sorted((p for p in ontology.properties()
                             if p.kind == kind),
                            key=lambda p: str(p.uri))
        if not properties:
            continue
        lines.append(f"## {heading}")
        lines.append("")
        lines.append("| property | parent | domain | range | notes |")
        lines.append("|---|---|---|---|---|")
        for prop in properties:
            parents = ", ".join(sorted(p.local_name
                                       for p in prop.parents)) or "—"
            domain = prop.domain.local_name if prop.domain else "—"
            if prop.range is not None:
                range_ = (prop.range.local_name
                          if isinstance(prop.range, URIRef)
                          else str(prop.range))
            else:
                range_ = "—"
            notes = []
            if prop.functional:
                notes.append("functional")
            if prop.inverse_of is not None:
                notes.append(f"inverse of {prop.inverse_of.local_name}")
            if prop.comment:
                notes.append(prop.comment)
            lines.append(f"| {prop.uri.local_name} | {parents} "
                         f"| {domain} | {range_} "
                         f"| {'; '.join(notes) or '—'} |")
        lines.append("")

    # ---------------------------------------------------- restrictions
    restrictions = list(ontology.restrictions())
    if restrictions:
        lines.append("## Restrictions")
        lines.append("")
        lines.append("| on class | property | kind | filler |")
        lines.append("|---|---|---|---|")
        for restriction in restrictions:
            lines.append(
                f"| {restriction.on_class.local_name} "
                f"| {restriction.on_property.local_name} "
                f"| {restriction.kind} "
                f"| {_render_filler(restriction.filler)} |")
        lines.append("")
    return "\n".join(lines)
