"""RDF round-trip for ontologies.

Serializes a TBox/ABox to an RDF graph using the standard RDFS/OWL
vocabulary, and reads one back.  This is how per-match OWL "files" are
materialized: the pipeline mirrors the paper's flow (initial OWLs →
extracted OWLs → inferred OWLs) by serializing each stage.
"""

from __future__ import annotations

from typing import Dict

from repro.rdf.graph import Graph
from repro.rdf.namespace import OWL, RDF, RDFS, SOCCER
from repro.rdf.term import Literal, Node, URIRef, bnode
from repro.ontology.model import (Individual, Ontology, PropertyKind,
                                  Restriction, RestrictionKind)

__all__ = ["to_graph", "abox_to_graph", "individuals_from_graph"]

_KIND_TO_URI = {
    PropertyKind.OBJECT: OWL.ObjectProperty,
    PropertyKind.DATA: OWL.DatatypeProperty,
}

_RESTRICTION_PREDICATE = {
    RestrictionKind.ALL_VALUES_FROM: OWL.allValuesFrom,
    RestrictionKind.SOME_VALUES_FROM: OWL.someValuesFrom,
    RestrictionKind.HAS_VALUE: OWL.hasValue,
    RestrictionKind.MIN_CARDINALITY: OWL.minCardinality,
    RestrictionKind.MAX_CARDINALITY: OWL.maxCardinality,
    RestrictionKind.CARDINALITY: OWL.cardinality,
}


def to_graph(ontology: Ontology, include_abox: bool = True) -> Graph:
    """Render TBox (and optionally ABox) as an RDF graph."""
    graph = Graph(identifier=ontology.name)
    graph.namespace_manager.bind("pre", SOCCER)
    graph.namespace_manager.bind("owl", OWL)

    for cls in ontology.classes():
        graph.add((cls.uri, RDF.type, OWL.Class))
        if cls.label and cls.label != cls.uri.local_name:
            graph.add((cls.uri, RDFS.label, Literal(cls.label)))
        if cls.comment:
            graph.add((cls.uri, RDFS.comment, Literal(cls.comment)))
        for parent in sorted(cls.parents):
            graph.add((cls.uri, RDFS.subClassOf, parent))
        for other in sorted(cls.disjoint_with):
            graph.add((cls.uri, OWL.disjointWith, other))

    for prop in ontology.properties():
        graph.add((prop.uri, RDF.type, _KIND_TO_URI[prop.kind]))
        if prop.functional:
            graph.add((prop.uri, RDF.type, OWL.FunctionalProperty))
        for parent in sorted(prop.parents):
            graph.add((prop.uri, RDFS.subPropertyOf, parent))
        if prop.domain is not None:
            graph.add((prop.uri, RDFS.domain, prop.domain))
        if prop.range is not None:
            graph.add((prop.uri, RDFS.range, prop.range))
        if prop.inverse_of is not None:
            graph.add((prop.uri, OWL.inverseOf, prop.inverse_of))

    for restriction in ontology.restrictions():
        node = bnode("r")
        graph.add((restriction.on_class, RDFS.subClassOf, node))
        graph.add((node, RDF.type, OWL.Restriction))
        graph.add((node, OWL.onProperty, restriction.on_property))
        predicate = _RESTRICTION_PREDICATE[restriction.kind]
        filler = restriction.filler
        if isinstance(filler, int) and not isinstance(filler, bool):
            value: Node = Literal(filler)
        else:
            value = filler  # URIRef or Literal
        graph.add((node, predicate, value))

    if include_abox:
        _write_abox(ontology, graph)
    return graph


def abox_to_graph(ontology: Ontology) -> Graph:
    """Render only the individuals (one match model, typically)."""
    graph = Graph(identifier=f"{ontology.name}-abox")
    graph.namespace_manager.bind("pre", SOCCER)
    _write_abox(ontology, graph)
    return graph


def _write_abox(ontology: Ontology, graph: Graph) -> None:
    for individual in ontology.individuals():
        for type_uri in sorted(individual.types):
            graph.add((individual.uri, RDF.type, type_uri))
        for prop, values in individual.properties.items():
            for value in values:
                graph.add((individual.uri, prop, value))


def individuals_from_graph(graph: Graph, ontology: Ontology) -> Ontology:
    """Read individuals from ``graph`` into a fresh ABox view.

    Every subject that has an ``rdf:type`` pointing at a known ontology
    class becomes an individual; its other statements become property
    values (unknown predicates are ignored, mirroring how the paper's
    indexer reads only ontology-backed statements).
    """
    abox = ontology.spawn_abox(f"{ontology.name}-loaded")

    def skolemize(node: Node) -> Node:
        """Blank nodes (e.g. rule-minted assists) become stable IRIs."""
        if isinstance(node, (URIRef, Literal)):
            return node
        return URIRef(str(SOCCER) + "skolem_" + str(node))

    typed: Dict[Node, Individual] = {}
    for subject, _, obj in graph.triples((None, RDF.type, None)):
        if isinstance(obj, URIRef) and ontology.has_class(obj):
            individual = typed.get(subject)
            if individual is None:
                individual = Individual(uri=skolemize(subject))  # type: ignore[arg-type]
                typed[subject] = individual
            individual.types.add(obj)
    for subject, predicate, obj in graph:
        if predicate == RDF.type:
            continue
        individual = typed.get(subject)
        if individual is not None and ontology.has_property(predicate):
            individual.add(predicate, skolemize(obj))
    for individual in typed.values():
        abox.add_individual(individual)
    return abox
