"""Ontology modeling: classes, properties, restrictions, individuals.

Highlights:

* :class:`~repro.ontology.model.Ontology` — TBox + ABox container with
  cheap shared-TBox per-match views (:meth:`spawn_abox`).
* :class:`~repro.ontology.builder.OntologyBuilder` — declarative
  construction API.
* :func:`~repro.ontology.soccer.soccer_ontology` — the paper's soccer
  domain ontology (79 concepts, 95 properties).
"""

from repro.ontology.builder import OntologyBuilder
from repro.ontology.docgen import generate_markdown
from repro.ontology.io import abox_to_graph, individuals_from_graph, to_graph
from repro.ontology.model import (Individual, OntClass, Ontology,
                                  OntProperty, PropertyKind, Restriction,
                                  RestrictionKind)
from repro.ontology.soccer import (CLASS_COUNT, PROPERTY_COUNT,
                                   soccer_ontology)

__all__ = [
    "Ontology",
    "OntClass",
    "OntProperty",
    "PropertyKind",
    "Restriction",
    "RestrictionKind",
    "Individual",
    "OntologyBuilder",
    "generate_markdown",
    "soccer_ontology",
    "CLASS_COUNT",
    "PROPERTY_COUNT",
    "to_graph",
    "abox_to_graph",
    "individuals_from_graph",
]
