"""Retrieval metrics: precision, recall, average precision, MAP.

Table 4 reports cells like ``5.3/7  75.7%`` under the caption *mean
average precision*: the absolute part is AP scaled by the number of
relevant items, the percentage is AP itself.  We compute standard
uninterpolated AP over the ranked result list.

Duplicate handling: an index may contain several documents for the
same underlying event (e.g. BASIC_EXT holds both the match-facts goal
and the goal's narration).  Ranked duplicates of an already-credited
relevant event are *skipped* (they occupy no rank position), the usual
convention for duplicate documents in IR test collections.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Set

__all__ = ["precision", "recall", "f1_score", "average_precision",
           "mean_average_precision", "reciprocal_rank"]

Resolver = Callable[[str], Optional[str]]


def _resolve_ranking(ranked_keys: Sequence[str], relevant: Set[str],
                     resolve: Optional[Resolver]) -> List[bool]:
    """Ranked list → relevance flags with duplicate-event dedup."""
    credited: Set[str] = set()
    flags: List[bool] = []
    for key in ranked_keys:
        gold = resolve(key) if resolve is not None else key
        if gold is not None and gold in relevant:
            if gold in credited:
                continue  # duplicate of an already-counted event
            credited.add(gold)
            flags.append(True)
        else:
            flags.append(False)
    return flags


def precision(ranked_keys: Sequence[str], relevant: Set[str],
              resolve: Optional[Resolver] = None,
              at: Optional[int] = None) -> float:
    """Fraction of (deduplicated) retrieved items that are relevant."""
    flags = _resolve_ranking(ranked_keys, relevant, resolve)
    if at is not None:
        flags = flags[:at]
    if not flags:
        return 0.0
    return sum(flags) / len(flags)


def recall(ranked_keys: Sequence[str], relevant: Set[str],
           resolve: Optional[Resolver] = None,
           at: Optional[int] = None) -> float:
    """Fraction of relevant items retrieved."""
    if not relevant:
        return 0.0
    flags = _resolve_ranking(ranked_keys, relevant, resolve)
    if at is not None:
        flags = flags[:at]
    return sum(flags) / len(relevant)


def f1_score(ranked_keys: Sequence[str], relevant: Set[str],
             resolve: Optional[Resolver] = None) -> float:
    p = precision(ranked_keys, relevant, resolve)
    r = recall(ranked_keys, relevant, resolve)
    if p + r == 0:
        return 0.0
    return 2 * p * r / (p + r)


def average_precision(ranked_keys: Sequence[str], relevant: Set[str],
                      resolve: Optional[Resolver] = None) -> float:
    """Uninterpolated AP = (1/R) Σ_k P(k) · rel(k)."""
    if not relevant:
        return 0.0
    flags = _resolve_ranking(ranked_keys, relevant, resolve)
    hits = 0
    precision_sum = 0.0
    for rank, flag in enumerate(flags, start=1):
        if flag:
            hits += 1
            precision_sum += hits / rank
    return precision_sum / len(relevant)


def reciprocal_rank(ranked_keys: Sequence[str], relevant: Set[str],
                    resolve: Optional[Resolver] = None) -> float:
    """1/rank of the first relevant hit (0 when none retrieved)."""
    flags = _resolve_ranking(ranked_keys, relevant, resolve)
    for rank, flag in enumerate(flags, start=1):
        if flag:
            return 1.0 / rank
    return 0.0


def mean_average_precision(per_query_ap: Iterable[float]) -> float:
    values = list(per_query_ap)
    if not values:
        return 0.0
    return sum(values) / len(values)
