"""The evaluation queries (paper Table 3 and Table 6)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

__all__ = ["EvalQuery", "TABLE3_QUERIES", "TABLE6_QUERIES"]


@dataclass(frozen=True)
class EvalQuery:
    """One evaluation query: id, description, keyword string."""

    query_id: str
    description: str
    keywords: str


#: Table 3, verbatim.
TABLE3_QUERIES: List[EvalQuery] = [
    EvalQuery("Q-1", "Find all goals", "goal"),
    EvalQuery("Q-2", "Find all goals scored by Barcelona",
              "barcelona goal"),
    EvalQuery("Q-3", "Find all goals scored by Messi at Barcelona",
              "messi barcelona goal"),
    EvalQuery("Q-4", "Find all punishments", "punishment"),
    EvalQuery("Q-5", "Find all yellow cards received by Alex",
              "alex yellow card"),
    EvalQuery("Q-6", "Find all goals scored to Casillas",
              "goal scored to casillas"),
    EvalQuery("Q-7", "Find all negative moves of Henry",
              "henry negative moves"),
    EvalQuery("Q-8", "Find all events involving Ronaldo", "ronaldo"),
    EvalQuery("Q-9", "Find all saves done by the goalkeeper of Barcelona",
              "save goalkeeper barcelona"),
    EvalQuery("Q-10", "Find all shoots delivered by defence players",
              "shoot defence players"),
]

#: Table 6 (phrasal-expression experiment), verbatim.
TABLE6_QUERIES: List[EvalQuery] = [
    EvalQuery("P-1", "Foul by Daniel", "foul by Daniel"),
    EvalQuery("P-2", "Foul by Daniel to Florent",
              "foul by Daniel to florent"),
    EvalQuery("P-3", "Foul by Florent to Daniel",
              "foul by florent to Daniel"),
]
