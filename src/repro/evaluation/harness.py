"""Evaluation harness: runs the Table 4 / 5 / 6 experiments.

Given a corpus and a pipeline result, runs every evaluation query
against every engine and computes the metrics the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

from repro.core.pipeline import IndexName, PipelineResult
from repro.core.retrieval import SearchHit
from repro.evaluation.metrics import (average_precision,
                                      mean_average_precision, precision,
                                      recall)
from repro.evaluation.queries import (EvalQuery, TABLE3_QUERIES,
                                      TABLE6_QUERIES)
from repro.evaluation.relevance import RelevanceJudge
from repro.soccer.corpus import Corpus

__all__ = ["QueryResult", "TableResult", "EvaluationHarness"]

SearchFn = Callable[[str], List[SearchHit]]


@dataclass
class QueryResult:
    """One (query, system) measurement."""

    query_id: str
    system: str
    average_precision: float
    relevant_count: int
    retrieved_count: int
    recall: float

    @property
    def scaled(self) -> float:
        """The paper's absolute column: AP · R (e.g. "5.3" of "5.3/7")."""
        return self.average_precision * self.relevant_count


@dataclass
class TableResult:
    """All measurements for one table (rows = queries, cols = systems)."""

    systems: List[str]
    rows: Dict[str, Dict[str, QueryResult]] = field(default_factory=dict)

    def get(self, query_id: str, system: str) -> QueryResult:
        return self.rows[query_id][system]

    def query_ids(self) -> List[str]:
        return list(self.rows)

    def mean_ap(self, system: str) -> float:
        return mean_average_precision(
            row[system].average_precision for row in self.rows.values())


class EvaluationHarness:
    """Runs the paper's experiments over a built pipeline."""

    def __init__(self, corpus: Corpus, result: PipelineResult) -> None:
        self.corpus = corpus
        self.result = result
        self.judge = RelevanceJudge(corpus)

    # ------------------------------------------------------------------

    def evaluate_query(self, query: EvalQuery, system: str,
                       search: SearchFn) -> QueryResult:
        hits = search(query.keywords)
        ranked = [hit.doc_key for hit in hits]
        relevant = self.judge.for_query(query.query_id)
        return QueryResult(
            query_id=query.query_id,
            system=system,
            average_precision=average_precision(ranked, relevant,
                                                self.judge.resolve),
            relevant_count=len(relevant),
            retrieved_count=len(ranked),
            recall=recall(ranked, relevant, self.judge.resolve),
        )

    def _search_fn(self, system: str) -> SearchFn:
        if system == IndexName.QUERY_EXP:
            return self.result.expansion_engine.search
        if system == IndexName.PHR_EXP:
            return self.result.phrasal_engine.search
        return self.result.engines[system].search

    def run_table(self, queries: Sequence[EvalQuery],
                  systems: Sequence[str]) -> TableResult:
        table = TableResult(systems=list(systems))
        for query in queries:
            row: Dict[str, QueryResult] = {}
            for system in systems:
                row[system] = self.evaluate_query(
                    query, system, self._search_fn(system))
            table.rows[query.query_id] = row
        return table

    # ------------------------------------------------------------------
    # the paper's tables
    # ------------------------------------------------------------------

    def table4(self) -> TableResult:
        """Evaluation results over the four-index ladder (Table 4)."""
        return self.run_table(TABLE3_QUERIES, IndexName.LADDER)

    def table5(self) -> TableResult:
        """Comparison with query expansion (Table 5)."""
        return self.run_table(TABLE3_QUERIES,
                              (IndexName.TRAD, IndexName.QUERY_EXP,
                               IndexName.FULL_INF))

    def table6(self) -> TableResult:
        """Phrasal expressions vs FULL_INF (Table 6)."""
        return self.run_table(TABLE6_QUERIES,
                              (IndexName.FULL_INF, IndexName.PHR_EXP))
