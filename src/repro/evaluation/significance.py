"""Statistical significance testing for system comparisons.

The paper compares systems by their per-query (average) precision
without significance analysis; with only ten queries that leaves the
comparisons statistically fragile.  This module adds the two standard
IR tests so the reproduction's claims can be qualified properly:

* **paired randomization (permutation) test** — the de-facto standard
  for MAP comparisons (Smucker et al., CIKM 2007);
* **paired bootstrap test** — resamples queries with replacement and
  reports how often the observed ordering survives.

Both are deterministic given a seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.errors import EvaluationError

__all__ = ["SignificanceResult", "paired_randomization_test",
           "paired_bootstrap_test", "compare_systems"]


@dataclass(frozen=True)
class SignificanceResult:
    """Outcome of a paired significance test."""

    mean_difference: float       # mean(system_b - system_a)
    p_value: float
    iterations: int
    test: str

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha


def _validate(scores_a: Sequence[float],
              scores_b: Sequence[float]) -> None:
    if len(scores_a) != len(scores_b):
        raise EvaluationError(
            "paired tests need the same queries for both systems")
    if not scores_a:
        raise EvaluationError("no query scores to compare")


def paired_randomization_test(scores_a: Sequence[float],
                              scores_b: Sequence[float],
                              iterations: int = 10000,
                              seed: int = 0) -> SignificanceResult:
    """Two-sided paired randomization test on per-query scores.

    Under the null hypothesis the labels of each (a, b) pair are
    exchangeable; the p-value is the fraction of random label flips
    whose |mean difference| reaches the observed one.
    """
    _validate(scores_a, scores_b)
    rng = random.Random(seed)
    differences = [b - a for a, b in zip(scores_a, scores_b)]
    observed = sum(differences) / len(differences)
    hits = 0
    for _ in range(iterations):
        flipped = sum(d if rng.random() < 0.5 else -d
                      for d in differences) / len(differences)
        if abs(flipped) >= abs(observed) - 1e-12:
            hits += 1
    return SignificanceResult(
        mean_difference=observed,
        p_value=hits / iterations,
        iterations=iterations,
        test="paired-randomization",
    )


def paired_bootstrap_test(scores_a: Sequence[float],
                          scores_b: Sequence[float],
                          iterations: int = 10000,
                          seed: int = 0) -> SignificanceResult:
    """One-sided paired bootstrap: p = P(resampled mean diff ≤ 0)
    when the observed difference favours system b (and symmetrically
    otherwise)."""
    _validate(scores_a, scores_b)
    rng = random.Random(seed)
    differences = [b - a for a, b in zip(scores_a, scores_b)]
    observed = sum(differences) / len(differences)
    count = len(differences)
    contrary = 0
    for _ in range(iterations):
        sample = [differences[rng.randrange(count)]
                  for _ in range(count)]
        mean = sum(sample) / count
        if (observed >= 0 and mean <= 0) \
                or (observed < 0 and mean >= 0):
            contrary += 1
    return SignificanceResult(
        mean_difference=observed,
        p_value=contrary / iterations,
        iterations=iterations,
        test="paired-bootstrap",
    )


def compare_systems(table, system_a: str, system_b: str,
                    iterations: int = 10000,
                    seed: int = 0) -> SignificanceResult:
    """Randomization test over a harness TableResult's AP columns."""
    query_ids = table.query_ids()
    scores_a = [table.get(q, system_a).average_precision
                for q in query_ids]
    scores_b = [table.get(q, system_b).average_precision
                for q in query_ids]
    return paired_randomization_test(scores_a, scores_b,
                                     iterations=iterations, seed=seed)
