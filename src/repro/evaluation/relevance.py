"""Gold relevance judgments, computed from simulator ground truth.

Because the corpus is simulated, the true answer set of every
evaluation query is known exactly — this module encodes the query
semantics over :class:`~repro.soccer.domain.GroundTruthEvent` records
and produces, per query, the set of relevant ground-truth event ids.

It also builds the resolver that maps index document keys (event ids
from match facts, narration ids from IE, skolem names from rules) back
to ground-truth event ids for metric computation.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set

from repro.soccer.corpus import Corpus
from repro.soccer.domain import EventKind, GroundTruthEvent

__all__ = ["GOAL_KINDS", "SHOOT_KINDS", "NEGATIVE_MOVE_KINDS",
           "RelevanceJudge"]

GOAL_KINDS = frozenset((EventKind.GOAL, EventKind.PENALTY_GOAL,
                        EventKind.OWN_GOAL))

#: every kind the ontology classifies under Shoot.
SHOOT_KINDS = frozenset((EventKind.SHOOT, EventKind.MISSED_GOAL,
                         EventKind.GOAL, EventKind.PENALTY_GOAL,
                         EventKind.OWN_GOAL))

#: kinds whose *actor* performed a negative move (the actorOf…
#: hierarchy of the ontology).
NEGATIVE_MOVE_KINDS = frozenset((EventKind.MISSED_GOAL, EventKind.OFFSIDE,
                                 EventKind.YELLOW_CARD, EventKind.RED_CARD,
                                 EventKind.FOUL, EventKind.HANDBALL,
                                 EventKind.OWN_GOAL))

Predicate = Callable[[GroundTruthEvent], bool]


class RelevanceJudge:
    """Gold judgments + doc-key resolution for one corpus."""

    def __init__(self, corpus: Corpus) -> None:
        self.corpus = corpus
        self._events: Dict[str, GroundTruthEvent] = {}
        for match in corpus.matches:
            for event in match.events:
                self._events[event.event_id] = event
        # narration id ("<match>_nNNNN") → ground-truth event id
        self._narration_to_event: Dict[str, Optional[str]] = {}
        for crawled in corpus.crawled:
            for index, narration in enumerate(crawled.narrations):
                key = f"{crawled.match_id}_n{index:04d}"
                self._narration_to_event[key] = narration.event_id

    # ------------------------------------------------------------------
    # doc-key resolution
    # ------------------------------------------------------------------

    def resolve(self, doc_key: str) -> Optional[str]:
        """Index document key → ground-truth event id (or None)."""
        if doc_key in self._events:
            return doc_key
        return self._narration_to_event.get(doc_key)

    # ------------------------------------------------------------------
    # query semantics
    # ------------------------------------------------------------------

    def relevant_ids(self, predicate: Predicate) -> Set[str]:
        return {event_id for event_id, event in self._events.items()
                if predicate(event)}

    def for_query(self, query_id: str) -> Set[str]:
        """Gold set for a Table 3 / Table 6 query id."""
        try:
            predicate = _QUERY_PREDICATES[query_id]
        except KeyError:
            raise KeyError(f"no gold semantics for query {query_id!r}") \
                from None
        return self.relevant_ids(predicate)

    def relevant_count(self, query_id: str) -> int:
        return len(self.for_query(query_id))


def _subject_is(event: GroundTruthEvent, name: str) -> bool:
    return event.subject is not None and event.subject.name == name


def _object_is(event: GroundTruthEvent, name: str) -> bool:
    return event.object is not None and event.object.name == name


def _name_token(player, token: str) -> bool:
    """True when ``token`` is one of the player's name words.

    The phrasal queries name players by a single word ("Daniel"),
    which legitimately matches every player carrying that word in his
    name (Daniel Alves *and* Daniel Agger) — the gold judgment has to
    grant the same, or the system would be penalized for correct
    matches.
    """
    if player is None:
        return False
    words = set(player.name.lower().split()) \
        | set(player.full_name.lower().split())
    return token.lower() in words


def _subject_token(event: GroundTruthEvent, token: str) -> bool:
    return _name_token(event.subject, token)


def _object_token(event: GroundTruthEvent, token: str) -> bool:
    return _name_token(event.object, token)


_QUERY_PREDICATES: Dict[str, Predicate] = {
    # Find all goals
    "Q-1": lambda e: e.kind in GOAL_KINDS,
    # Find all goals scored by Barcelona (own goals are credited to
    # Barcelona's score but not "scored by Barcelona")
    "Q-2": lambda e: (e.kind in (EventKind.GOAL, EventKind.PENALTY_GOAL)
                      and e.team == "Barcelona"),
    # Find all goals scored by Messi at Barcelona
    "Q-3": lambda e: (e.kind in (EventKind.GOAL, EventKind.PENALTY_GOAL)
                      and _subject_is(e, "Messi")),
    # Find all punishments
    "Q-4": lambda e: e.kind in (EventKind.YELLOW_CARD,
                                EventKind.RED_CARD),
    # Find all yellow cards received by Alex
    "Q-5": lambda e: (e.kind == EventKind.YELLOW_CARD
                      and _subject_is(e, "Alex")),
    # Find all goals scored to Casillas (Real Madrid's keeper)
    "Q-6": lambda e: (e.kind in GOAL_KINDS
                      and e.object_team == "Real Madrid"),
    # Find all negative moves of Henry
    "Q-7": lambda e: (e.kind in NEGATIVE_MOVE_KINDS
                      and _subject_is(e, "Henry")),
    # Find all events involving Ronaldo
    "Q-8": lambda e: e.involves("Ronaldo"),
    # Find all saves done by the goalkeeper of Barcelona
    "Q-9": lambda e: (e.kind == EventKind.SAVE
                      and e.team == "Barcelona"),
    # Find all shoots delivered by defence players
    "Q-10": lambda e: (e.kind in SHOOT_KINDS and e.subject is not None
                       and e.subject.position_group == "DefencePlayer"),
    # Table 6 phrasal queries (single-word names match any player
    # carrying that word, e.g. both Daniel Alves and Daniel Agger)
    "P-1": lambda e: (e.kind == EventKind.FOUL
                      and _subject_token(e, "daniel")),
    "P-2": lambda e: (e.kind == EventKind.FOUL
                      and _subject_token(e, "daniel")
                      and _object_token(e, "florent")),
    "P-3": lambda e: (e.kind == EventKind.FOUL
                      and _subject_token(e, "florent")
                      and _object_token(e, "daniel")),
}
