"""Rendering evaluation tables in the paper's format.

Cells follow Table 4's ``5.3/7  75.7%`` convention: AP·R over R, then
AP as a percentage.
"""

from __future__ import annotations

from typing import Dict, List

from repro.evaluation.harness import QueryResult, TableResult

__all__ = ["format_cell", "render_table", "PAPER_TABLE4", "PAPER_TABLE5",
           "PAPER_TABLE6"]


def format_cell(result: QueryResult, absolute: bool = True) -> str:
    percent = f"{result.average_precision * 100:.1f}%"
    if not absolute:
        return percent
    return (f"{result.scaled:.1f}/{result.relevant_count} "
            f"{percent}")


def render_table(table: TableResult, title: str = "",
                 absolute: bool = True) -> str:
    """Plain-text table matching the paper's row/column layout."""
    header = ["Queries"] + table.systems
    rows: List[List[str]] = [header]
    for query_id in table.query_ids():
        row = [query_id]
        for system in table.systems:
            row.append(format_cell(table.get(query_id, system), absolute))
        rows.append(row)
    mean_row = ["MAP"]
    for system in table.systems:
        mean_row.append(f"{table.mean_ap(system) * 100:.1f}%")
    rows.append(mean_row)

    widths = [max(len(row[col]) for row in rows)
              for col in range(len(header))]
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for index, row in enumerate(rows):
        lines.append("  ".join(cell.ljust(width)
                               for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


#: the paper's published percentages, for shape comparison in
#: EXPERIMENTS.md and the benchmark output (query id → system → %).
PAPER_TABLE4: Dict[str, Dict[str, float]] = {
    "Q-1": {"TRAD": 1.4, "BASIC_EXT": 100.0, "FULL_EXT": 100.0,
            "FULL_INF": 100.0},
    "Q-2": {"TRAD": 5.7, "BASIC_EXT": 75.7, "FULL_EXT": 75.7,
            "FULL_INF": 75.7},
    "Q-3": {"TRAD": 23.3, "BASIC_EXT": 100.0, "FULL_EXT": 100.0,
            "FULL_INF": 100.0},
    "Q-4": {"TRAD": 0.0, "BASIC_EXT": 0.0, "FULL_EXT": 0.0,
            "FULL_INF": 100.0},
    "Q-5": {"TRAD": 55.0, "BASIC_EXT": 100.0, "FULL_EXT": 100.0,
            "FULL_INF": 100.0},
    "Q-6": {"TRAD": 1.1, "BASIC_EXT": 63.3, "FULL_EXT": 62.2,
            "FULL_INF": 100.0},
    "Q-7": {"TRAD": 31.4, "BASIC_EXT": 27.1, "FULL_EXT": 32.8,
            "FULL_INF": 90.0},
    "Q-8": {"TRAD": 71.8, "BASIC_EXT": 78.1, "FULL_EXT": 77.2,
            "FULL_INF": 75.9},
    "Q-9": {"TRAD": 63.7, "BASIC_EXT": 56.2, "FULL_EXT": 78.7,
            "FULL_INF": 93.7},
    "Q-10": {"TRAD": 0.0, "BASIC_EXT": 0.0, "FULL_EXT": 26.4,
             "FULL_INF": 98.1},
}

PAPER_TABLE5: Dict[str, Dict[str, float]] = {
    "Q-1": {"TRAD": 1.4, "QUERY_EXP": 30.1, "FULL_INF": 100.0},
    "Q-2": {"TRAD": 5.7, "QUERY_EXP": 16.4, "FULL_INF": 75.7},
    "Q-3": {"TRAD": 23.3, "QUERY_EXP": 49.0, "FULL_INF": 100.0},
    "Q-4": {"TRAD": 0.0, "QUERY_EXP": 63.6, "FULL_INF": 100.0},
    "Q-5": {"TRAD": 55.0, "QUERY_EXP": 51.5, "FULL_INF": 100.0},
    "Q-6": {"TRAD": 1.1, "QUERY_EXP": 11.5, "FULL_INF": 100.0},
    "Q-7": {"TRAD": 31.4, "QUERY_EXP": 27.16, "FULL_INF": 90.0},
    "Q-8": {"TRAD": 71.8, "QUERY_EXP": 71.8, "FULL_INF": 75.9},
    "Q-9": {"TRAD": 63.7, "QUERY_EXP": 62.5, "FULL_INF": 93.7},
    "Q-10": {"TRAD": 0.0, "QUERY_EXP": 4.3, "FULL_INF": 98.1},
}

PAPER_TABLE6: Dict[str, Dict[str, float]] = {
    "P-1": {"FULL_INF": 48.2, "PHR_EXP": 100.0},
    "P-2": {"FULL_INF": 47.7, "PHR_EXP": 100.0},
    "P-3": {"FULL_INF": 100.0, "PHR_EXP": 100.0},
}
