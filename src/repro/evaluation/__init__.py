"""Evaluation: metrics, gold relevance, queries, harness, reports."""

from repro.evaluation.harness import (EvaluationHarness, QueryResult,
                                      TableResult)
from repro.evaluation.metrics import (average_precision, f1_score,
                                      mean_average_precision, precision,
                                      recall, reciprocal_rank)
from repro.evaluation.queries import (EvalQuery, TABLE3_QUERIES,
                                      TABLE6_QUERIES)
from repro.evaluation.relevance import (GOAL_KINDS, NEGATIVE_MOVE_KINDS,
                                        RelevanceJudge, SHOOT_KINDS)
from repro.evaluation.significance import (SignificanceResult,
                                            compare_systems,
                                            paired_bootstrap_test,
                                            paired_randomization_test)
from repro.evaluation.report import (PAPER_TABLE4, PAPER_TABLE5,
                                     PAPER_TABLE6, format_cell,
                                     render_table)

__all__ = [
    "precision",
    "recall",
    "f1_score",
    "average_precision",
    "mean_average_precision",
    "reciprocal_rank",
    "EvalQuery",
    "TABLE3_QUERIES",
    "TABLE6_QUERIES",
    "RelevanceJudge",
    "GOAL_KINDS",
    "SHOOT_KINDS",
    "NEGATIVE_MOVE_KINDS",
    "EvaluationHarness",
    "QueryResult",
    "TableResult",
    "format_cell",
    "render_table",
    "PAPER_TABLE4",
    "PAPER_TABLE5",
    "PAPER_TABLE6",
    "SignificanceResult",
    "compare_systems",
    "paired_randomization_test",
    "paired_bootstrap_test",
]
