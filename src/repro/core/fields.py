"""Semantic index schema: field names, boosts and label rendering.

Mirrors the paper's Table 1 (extracted index) and Table 2 (additional
inferred fields).  Index-time boosts implement §3.6.2: "we boosted the
ranking of fields containing the extracted and inferred information …
the 'event' field is given the highest ranking".
"""

from __future__ import annotations

import re
from typing import Dict, List

from repro.ontology.model import Ontology
from repro.rdf.term import URIRef

__all__ = ["F", "FIELD_BOOSTS", "QUERY_FIELD_WEIGHTS", "SEARCHED_FIELDS",
           "class_label", "camel_to_words"]


class F:
    """Field-name constants."""

    DOC_KEY = "docKey"              # evaluation provenance; not searched
    EVENT = "event"
    MATCH = "match"
    TEAM1 = "team1"
    TEAM2 = "team2"
    DATE = "date"
    MINUTE = "minute"
    SUBJECT_PLAYER = "subjectPlayer"
    OBJECT_PLAYER = "objectPlayer"
    SUBJECT_TEAM = "subjectTeam"
    OBJECT_TEAM = "objectTeam"
    SUBJECT_PLAYER_PROP = "subjectPlayerProp"   # inferred index only
    OBJECT_PLAYER_PROP = "objectPlayerProp"     # inferred index only
    FROM_RULES = "fromRules"                    # inferred index only
    SUBJECT_PHRASE = "subjectPhrase"            # PHR_EXP only (§6)
    OBJECT_PHRASE = "objectPhrase"              # PHR_EXP only (§6)
    NARRATION = "narration"


#: index-time boosts (§3.6.2): semantic fields above free text, the
#: event type above everything.
FIELD_BOOSTS: Dict[str, float] = {
    F.EVENT: 6.0,
    F.SUBJECT_PLAYER: 4.0,
    F.OBJECT_PLAYER: 4.0,
    F.SUBJECT_TEAM: 3.0,
    F.OBJECT_TEAM: 3.0,
    F.SUBJECT_PLAYER_PROP: 3.0,
    F.OBJECT_PLAYER_PROP: 3.0,
    F.FROM_RULES: 3.0,
    F.SUBJECT_PHRASE: 5.0,
    F.OBJECT_PHRASE: 5.0,
    F.MATCH: 1.0,
    F.TEAM1: 1.5,
    F.TEAM2: 1.5,
    F.DATE: 1.0,
    F.MINUTE: 1.0,
    F.NARRATION: 1.0,
}

#: Query-time field importance (§3.6.2 "these fields are re-ranked
#: according to their importance").  Subject roles outweigh object
#: roles: a keyword naming a team/player is far more likely to mean
#: the actor than the acted-upon (e.g. "save … barcelona" means
#: Barcelona's keeper saving, not saves against Barcelona), and the
#: per-field idf of a rarer object field would otherwise dominate.
QUERY_FIELD_WEIGHTS: Dict[str, float] = {
    "objectPlayer": 0.6,
    "objectTeam": 0.35,
    "objectPlayerProp": 0.6,
    "team1": 0.8,
    "team2": 0.8,
}

#: fields the keyword interface fans each query term over.
SEARCHED_FIELDS: List[str] = [
    F.EVENT,
    F.SUBJECT_PLAYER, F.OBJECT_PLAYER,
    F.SUBJECT_TEAM, F.OBJECT_TEAM,
    F.SUBJECT_PLAYER_PROP, F.OBJECT_PLAYER_PROP,
    F.FROM_RULES,
    F.TEAM1, F.TEAM2,
    F.NARRATION,
]

_CAMEL_BOUNDARY = re.compile(r"(?<=[a-z0-9])(?=[A-Z])")


def camel_to_words(name: str) -> str:
    """``YellowCard`` → ``yellow card`` (for index terms)."""
    return _CAMEL_BOUNDARY.sub(" ", name).lower()


def class_label(ontology: Ontology, uri: URIRef) -> str:
    """Indexable label of a class: its declared label (e.g. "Miss" for
    MissedGoal) camel-split and lowercased."""
    if ontology.has_class(uri):
        return camel_to_words(ontology.get_class(uri).label)
    return camel_to_words(uri.local_name)
