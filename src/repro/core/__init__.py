"""The paper's core contribution: semantic indexing + keyword retrieval.

* :class:`~repro.core.pipeline.SemanticRetrievalPipeline` — the Fig. 1
  flow, producing the TRAD / BASIC_EXT / FULL_EXT / FULL_INF / PHR_EXP
  indexes.
* :class:`~repro.core.retrieval.KeywordSearchEngine` — the keyword
  interface with boosted semantic fields (§3.6.2).
* :class:`~repro.core.expansion.ExpandedSearchEngine` — the §5 query
  expansion baseline.
* :class:`~repro.core.phrasal.PhrasalSearchEngine` — the §6 phrasal
  extension.
"""

from repro.core.expansion import (DOMAIN_VERBS, ExpandedSearchEngine,
                                  QueryExpander)
from repro.core.feedback import (FeedbackLearner, FeedbackSearchEngine,
                                 FeedbackStore)
from repro.core.fields import F, FIELD_BOOSTS, SEARCHED_FIELDS
from repro.core.indexer import SemanticIndexer, default_index_analyzer
from repro.core.names import IndexName
from repro.core.observability import (Counter, Gauge, Histogram,
                                      MetricsRegistry, Observability,
                                      Span, Tracer, get_observability,
                                      install_observability, observed,
                                      validate_trace)
from repro.core.parallel import (MatchPartial, MatchProcessor, MatchTask,
                                 ParallelPipelineExecutor)
from repro.core.phrasal import PhrasalQueryParser, PhrasalSearchEngine
from repro.core.pipeline import (PipelineResult,
                                 SemanticRetrievalPipeline)
from repro.core.profiling import (CacheCounter, PipelineProfile,
                                  StageProfiler)
from repro.core.resilience import (ExecutionOutcome, FaultMode,
                                   FaultPlan, FaultSpec,
                                   QuarantineRecord, QuarantineReport,
                                   ResilienceConfig, RetryPolicy,
                                   StageRunner)
from repro.core.retrieval import KeywordSearchEngine, SearchHit
from repro.core.storage import ModelStore

__all__ = [
    "F",
    "FIELD_BOOSTS",
    "SEARCHED_FIELDS",
    "SemanticIndexer",
    "default_index_analyzer",
    "KeywordSearchEngine",
    "SearchHit",
    "QueryExpander",
    "ExpandedSearchEngine",
    "DOMAIN_VERBS",
    "PhrasalQueryParser",
    "PhrasalSearchEngine",
    "FeedbackStore",
    "FeedbackLearner",
    "FeedbackSearchEngine",
    "IndexName",
    "PipelineResult",
    "SemanticRetrievalPipeline",
    "ModelStore",
    "MatchTask",
    "MatchPartial",
    "MatchProcessor",
    "ParallelPipelineExecutor",
    "CacheCounter",
    "PipelineProfile",
    "StageProfiler",
    "FaultMode",
    "FaultSpec",
    "FaultPlan",
    "RetryPolicy",
    "ResilienceConfig",
    "StageRunner",
    "QuarantineRecord",
    "QuarantineReport",
    "ExecutionOutcome",
    "Observability",
    "Tracer",
    "Span",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "get_observability",
    "install_observability",
    "observed",
    "validate_trace",
]
