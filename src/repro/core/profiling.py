"""Lightweight stage profiler for the ingestion pipeline.

Records per-stage and per-match wall-clock plus cache hit rates, so
every scaling PR can measure where ingestion time goes before and
after a change.  The profiler is deliberately tiny: a disabled
profiler costs one attribute check per stage, and an enabled one two
``perf_counter`` calls — cheap enough to leave on in production
builds (``repro build --profile``).

The snapshot (:class:`PipelineProfile`) is attached to
:class:`~repro.core.pipeline.PipelineResult` and serializes to JSON
for the ``BENCH_ingest.json`` trajectory file.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

__all__ = ["CacheCounter", "StageStats", "PipelineProfile",
           "StageProfiler"]


@dataclass
class CacheCounter:
    """Hit/miss tally for one memoization layer."""

    hits: int = 0
    misses: int = 0

    def hit(self) -> None:
        self.hits += 1

    def miss(self) -> None:
        self.misses += 1

    @property
    def total(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.total if self.total else 0.0

    def as_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "hit_rate": round(self.hit_rate, 4)}


@dataclass
class StageStats:
    """Accumulated wall-clock for one named stage."""

    seconds: float = 0.0
    calls: int = 0

    def add(self, seconds: float) -> None:
        self.seconds += seconds
        self.calls += 1


@dataclass
class PipelineProfile:
    """An immutable snapshot of one profiled pipeline run."""

    stages: Dict[str, StageStats] = field(default_factory=dict)
    # match_id -> stage -> seconds
    match_stages: Dict[str, Dict[str, float]] = field(default_factory=dict)
    caches: Dict[str, dict] = field(default_factory=dict)
    #: event tallies — resilience (stage retries, injected faults,
    #: quarantined matches, worker crashes, pool rebuilds) and
    #: reasoning (rule firings, delta sizes, skipped evaluations)
    counters: Dict[str, int] = field(default_factory=dict)
    total_seconds: float = 0.0
    workers: int = 1

    def stage_seconds(self, name: str) -> float:
        stats = self.stages.get(name)
        return stats.seconds if stats else 0.0

    def to_json(self) -> dict:
        return {
            "workers": self.workers,
            "total_seconds": round(self.total_seconds, 6),
            "stages": {name: {"seconds": round(stats.seconds, 6),
                              "calls": stats.calls}
                       for name, stats in self.stages.items()},
            "match_stages": {
                match_id: {stage: round(seconds, 6)
                           for stage, seconds in stages.items()}
                for match_id, stages in self.match_stages.items()
            },
            "caches": dict(self.caches),
            "counters": dict(self.counters),
        }

    def render(self) -> str:
        """A human-readable table (the ``--profile`` CLI output)."""
        lines = [f"pipeline profile — {self.total_seconds:.2f}s total, "
                 f"{self.workers} worker(s)"]
        if self.stages:
            lines.append("")
            lines.append(f"{'stage':28} {'calls':>6} {'seconds':>9}")
            for name, stats in sorted(self.stages.items(),
                                      key=lambda kv: -kv[1].seconds):
                lines.append(f"{name:28} {stats.calls:6d} "
                             f"{stats.seconds:9.3f}")
        if self.caches:
            lines.append("")
            lines.append(f"{'cache':28} {'hits':>9} {'misses':>8} "
                         f"{'hit rate':>9}")
            for name, info in sorted(self.caches.items()):
                total = info.get("hits", 0) + info.get("misses", 0)
                rate = info.get("hits", 0) / total if total else 0.0
                lines.append(f"{name:28} {info.get('hits', 0):9d} "
                             f"{info.get('misses', 0):8d} {rate:8.1%}")
        if self.counters:
            lines.append("")
            lines.append(f"{'counter':28} {'count':>6}")
            for name, count in sorted(self.counters.items()):
                lines.append(f"{name:28} {count:6d}")
        return "\n".join(lines)


class StageProfiler:
    """Collects stage timings while the pipeline runs.

    Usage::

        profiler = StageProfiler()
        with profiler.stage("merge_indexes"):
            ...
        profiler.record_match("match_03", {"inference": 0.41})
        profile = profiler.snapshot(workers=4)
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._stages: Dict[str, StageStats] = {}
        self._match_stages: Dict[str, Dict[str, float]] = {}
        self._caches: Dict[str, dict] = {}
        self._counters: Dict[str, int] = {}
        self._started = time.perf_counter()

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time one block under ``name`` (no-op when disabled)."""
        if not self.enabled:
            yield
            return
        started = time.perf_counter()
        try:
            yield
        finally:
            self.record(name, time.perf_counter() - started)

    def record(self, name: str, seconds: float) -> None:
        """Accumulate an externally-measured stage duration."""
        if not self.enabled:
            return
        self._stages.setdefault(name, StageStats()).add(seconds)

    def record_match(self, match_id: str,
                     stage_seconds: Dict[str, float]) -> None:
        """Attach one match's per-stage wall-clock, and fold each
        stage into the aggregate totals."""
        if not self.enabled:
            return
        self._match_stages[match_id] = dict(stage_seconds)
        for stage, seconds in stage_seconds.items():
            self.record(stage, seconds)

    def add_cache(self, name: str, info) -> None:
        """Register cache statistics under ``name``.

        Accepts a :class:`CacheCounter`, anything with ``hits`` /
        ``misses`` attributes (e.g. ``functools.lru_cache`` info), or
        a plain mapping.
        """
        if not self.enabled:
            return
        if isinstance(info, CacheCounter):
            self._caches[name] = info.as_dict()
        elif hasattr(info, "hits") and hasattr(info, "misses"):
            entry = {"hits": int(info.hits), "misses": int(info.misses)}
            if getattr(info, "currsize", None) is not None:
                entry["currsize"] = int(info.currsize)
            total = entry["hits"] + entry["misses"]
            entry["hit_rate"] = round(entry["hits"] / total, 4) \
                if total else 0.0
            self._caches[name] = entry
        else:
            self._caches[name] = dict(info)

    def add_counter(self, name: str, count: int = 1) -> None:
        """Accumulate an event tally (retries, quarantines, rule
        firings, …)."""
        if not self.enabled:
            return
        self._counters[name] = self._counters.get(name, 0) + count

    def snapshot(self, workers: int = 1,
                 total_seconds: Optional[float] = None) -> PipelineProfile:
        """Freeze the collected data into a :class:`PipelineProfile`."""
        if total_seconds is None:
            total_seconds = time.perf_counter() - self._started
        return PipelineProfile(
            stages={name: StageStats(stats.seconds, stats.calls)
                    for name, stats in self._stages.items()},
            match_stages={match_id: dict(stages)
                          for match_id, stages
                          in self._match_stages.items()},
            caches=dict(self._caches),
            counters=dict(self._counters),
            total_seconds=total_seconds,
            workers=workers,
        )
