"""Query expansion baseline (paper §5).

Expands query terms with domain verbs and with ontological
subclass labels ("the query 'punishment' is augmented with its
subclasses such as 'yellow card' and 'red card' as well as the verb
'book' and its derivatives"), then runs the expanded query over the
*traditional* free-text index.  This is the method the paper shows to
sit between TRAD and FULL_INF (Table 5).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.core.fields import F, class_label
from repro.core.observability import get_observability
from repro.core.retrieval import KeywordSearchEngine, SearchHit
from repro.ontology.model import Ontology
from repro.reasoning.taxonomy import Taxonomy
from repro.search.index import InvertedIndex

__all__ = ["QueryExpander", "ExpandedSearchEngine", "DOMAIN_VERBS"]

#: hand-curated domain verb/synonym expansions, mirroring the paper's
#: examples: "a query containing the word 'goal' is expanded with the
#: verbs 'score', 'miss' and their derivatives".
DOMAIN_VERBS: Dict[str, List[str]] = {
    "goal": ["scores", "score", "scored", "misses", "miss", "net"],
    "punishment": ["book", "booked", "booking"],
    "card": ["booked", "book"],
    "save": ["saves", "saved", "parries", "denied"],
    "foul": ["challenge", "challenging", "trips", "brings"],
    "shoot": ["shot", "shots"],
    "pass": ["feeds", "finds", "ball"],
    "offside": ["flagged"],
    "substitution": ["replaces", "way"],
    "injury": ["injured", "treatment"],
}


class QueryExpander:
    """Expands keyword queries with domain verbs + ontology labels."""

    def __init__(self, ontology: Ontology,
                 verbs: Optional[Dict[str, List[str]]] = None,
                 taxonomy: Optional[Taxonomy] = None) -> None:
        self.ontology = ontology
        self.taxonomy = taxonomy or Taxonomy(ontology)
        self.verbs = dict(DOMAIN_VERBS if verbs is None else verbs)
        self._label_to_class = {}
        for cls in ontology.classes():
            self._label_to_class.setdefault(
                class_label(ontology, cls.uri), cls.uri)

    def expand(self, text: str) -> str:
        """Return the expanded query string (original terms first)."""
        words = text.split()
        expansions: List[str] = []
        seen: Set[str] = {word.lower() for word in words}

        def push(term: str) -> None:
            for word in term.split():
                if word not in seen:
                    seen.add(word)
                    expansions.append(word)

        for word in words:
            lowered = word.lower()
            for verb in self.verbs.get(lowered, ()):
                push(verb)
            # ontological expansion: subclasses of a matching class
            class_uri = self._label_to_class.get(lowered)
            if class_uri is not None:
                for sub in sorted(self.taxonomy.subclasses(class_uri)):
                    push(class_label(self.ontology, sub))
        return " ".join(words + expansions)


class ExpandedSearchEngine:
    """QUERY_EXP: expansion + traditional full-text search."""

    def __init__(self, traditional_index: InvertedIndex,
                 expander: QueryExpander) -> None:
        self.engine = KeywordSearchEngine(
            traditional_index, fields=[F.NARRATION])
        self.expander = expander

    def search(self, text: str,
               limit: Optional[int] = None) -> List[SearchHit]:
        obs = get_observability()
        with obs.tracer.span("query", engine="query_exp"):
            with obs.tracer.span("query.expand",
                                 original=text[:120]) as span:
                expanded = self.expander.expand(text)
                if span is not None:
                    span.attributes["added_terms"] = (
                        len(expanded.split()) - len(text.split()))
            if obs.metrics.enabled:
                obs.metrics.counter("query_expansions_total",
                                    "queries expanded before retrieval"
                                    ).inc()
            # the inner keyword engine opens the nested "query" span
            # and records latency/queries_total for this search.
            return self.engine.search(expanded, limit)
