"""User-feedback index expansion (paper §8 future work).

"Finally, a mechanism that expands the index automatically according
to the user feedback is one of our future goals."  This module
implements that mechanism:

1. :class:`FeedbackStore` records which document a user clicked for a
   query.
2. :class:`FeedbackLearner` mines the click log: when users who type
   term *t* consistently click documents whose boosted semantic
   fields contain term *s* (and *t* itself does not occur there), the
   association *t → s* is learned once it has enough support.
3. :class:`FeedbackSearchEngine` applies the learned associations as
   query-side expansions — functionally equivalent to the §7 "add the
   translated/synonym value next to its original" index enrichment,
   but without rebuilding the index.

The canonical win: users type "booking", click yellow-card events;
after ``min_support`` clicks, "booking" retrieves cards directly.
"""

from __future__ import annotations

import threading
from collections import Counter, defaultdict
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.fields import F
from repro.core.indexer import default_index_analyzer
from repro.core.retrieval import KeywordSearchEngine, SearchHit
from repro.search.index import InvertedIndex

__all__ = ["Click", "FeedbackStore", "FeedbackLearner",
           "FeedbackSearchEngine"]

#: semantic fields whose terms are candidates for learned expansions.
_LEARN_FIELDS = (F.EVENT, F.SUBJECT_PLAYER_PROP, F.OBJECT_PLAYER_PROP,
                 F.FROM_RULES)


@dataclass(frozen=True)
class Click:
    """One recorded user interaction."""

    query: str
    doc_key: str


class FeedbackStore:
    """Append-only click log.

    Thread-safe: in the serving layer ``/feedback`` records clicks
    while ``/search`` (via :meth:`FeedbackSearchEngine.refresh`)
    snapshots them, so both sides go through one lock.  ``clicks``
    returns an independent list — callers can iterate it while new
    clicks keep arriving.
    """

    def __init__(self) -> None:
        self._clicks: List[Click] = []
        self._lock = threading.Lock()

    def record(self, query: str, doc_key: str) -> Click:
        click = Click(query=query, doc_key=doc_key)
        with self._lock:
            self._clicks.append(click)
        return click

    def clicks(self) -> List[Click]:
        with self._lock:
            return list(self._clicks)

    def __len__(self) -> int:
        with self._lock:
            return len(self._clicks)


@contextmanager
def _read_view(index):
    """A consistent multi-call read view of ``index``.

    Segmented indexes expose :meth:`SegmentedIndex.pinned`, which
    freezes one manifest generation for the whole block (a concurrent
    refresh cannot yank readers or mix generations mid-scan); the
    in-memory :class:`InvertedIndex` has no snapshot machinery and is
    yielded as-is.
    """
    pinned = getattr(index, "pinned", None)
    with (pinned() if pinned is not None
          else nullcontext(index)) as view:
        yield view


class FeedbackLearner:
    """Mines term associations from the click log.

    ``index`` may be a mutable :class:`InvertedIndex` or a segmented
    serving index — anything exposing the read API plus a
    ``generation`` counter.  The doc-key map is keyed on that
    generation and rebuilt lazily whenever it moves, so documents
    ingested *after* construction become learnable: clicks on them
    used to be silently dropped because the map was computed exactly
    once at startup.
    """

    def __init__(self, index: InvertedIndex,
                 min_support: int = 3) -> None:
        if min_support < 1:
            raise ValueError("min_support must be at least 1")
        self.index = index
        self.min_support = min_support
        self.analyzer = default_index_analyzer()
        self._map_lock = threading.Lock()
        self._map_generation: Optional[int] = None
        self._doc_key_to_id: Dict[str, int] = {}
        self._doc_key_map()    # eager first build, as before

    def _doc_key_map(self) -> Dict[str, int]:
        """The doc-key → doc-id map for the index's *current*
        generation, rebuilt under a lock when the generation moved
        (live ingestion, merges, in-memory mutation)."""
        generation = self.index.generation
        if generation == self._map_generation:
            return self._doc_key_to_id
        with self._map_lock:
            if generation == self._map_generation:
                return self._doc_key_to_id
            with _read_view(self.index) as view:
                mapping: Dict[str, int] = {}
                for doc_id in range(view.doc_count):
                    key = view.stored_value(doc_id, F.DOC_KEY)
                    if key is not None:
                        mapping[key] = doc_id
                self._doc_key_to_id = mapping
                self._map_generation = view.generation
        return self._doc_key_to_id

    def _semantic_terms(self, doc_id: int) -> Set[str]:
        terms: Set[str] = set()
        for field_name in _LEARN_FIELDS:
            value = self.index.stored_value(doc_id, field_name)
            if value:
                terms.update(
                    self.analyzer.for_field(field_name).terms(value))
        return terms

    def learn(self, store: FeedbackStore) -> Dict[str, List[str]]:
        """Return learned associations ``query term → field terms``.

        A query term contributes only when it does NOT already occur
        in the clicked document's semantic fields — terms that already
        match need no expansion.
        """
        support: Dict[Tuple[str, str], int] = Counter()
        term_clicks: Dict[str, int] = Counter()
        doc_key_to_id = self._doc_key_map()
        for click in store.clicks():
            doc_id = doc_key_to_id.get(click.doc_key)
            if doc_id is None:
                continue
            doc_terms = self._semantic_terms(doc_id)
            query_terms = self.analyzer.for_field(F.NARRATION).terms(
                click.query)
            for query_term in query_terms:
                if query_term in doc_terms:
                    continue          # already vocabulary-aligned
                term_clicks[query_term] += 1
                for doc_term in doc_terms:
                    support[(query_term, doc_term)] += 1

        learned: Dict[str, List[str]] = defaultdict(list)
        for (query_term, doc_term), count in sorted(support.items()):
            if count >= self.min_support \
                    and count == term_clicks[query_term]:
                # the association held on *every* click of this term —
                # conservative, avoids drifting toward popular docs
                learned[query_term].append(doc_term)
        return dict(learned)


class FeedbackSearchEngine:
    """A keyword engine that folds in learned expansions."""

    def __init__(self, index: InvertedIndex,
                 learner: Optional[FeedbackLearner] = None,
                 min_support: int = 3) -> None:
        self.engine = KeywordSearchEngine(index)
        self.store = FeedbackStore()
        self.learner = learner or FeedbackLearner(index, min_support)
        self._expansions: Dict[str, List[str]] = {}

    # ------------------------------------------------------------------

    def record_click(self, query: str, hit: SearchHit | str) -> None:
        doc_key = hit.doc_key if isinstance(hit, SearchHit) else hit
        self.store.record(query, doc_key)

    def refresh(self) -> Dict[str, List[str]]:
        """Re-mine the click log; returns the active expansion map."""
        self._expansions = self.learner.learn(self.store)
        return dict(self._expansions)

    @property
    def expansions(self) -> Dict[str, List[str]]:
        return dict(self._expansions)

    def expand_query(self, text: str) -> str:
        analyzer = self.learner.analyzer.for_field(F.NARRATION)
        extra: List[str] = []
        seen = set(analyzer.terms(text))
        for term in analyzer.terms(text):
            for expansion in self._expansions.get(term, ()):
                if expansion not in seen:
                    seen.add(expansion)
                    extra.append(expansion)
        if not extra:
            return text
        return text + " " + " ".join(extra)

    def search(self, text: str,
               limit: Optional[int] = None) -> List[SearchHit]:
        return self.engine.search(self.expand_query(text), limit)
