"""Fault-tolerant ingestion: fault injection, retry, quarantine.

The paper's scalability argument (§3.5, §6) rests on every match
being an independent model, so one unparseable page must never
poison the corpus — ingestion over noisy crawls fails routinely
*per document*, and the retrieval layer has to stay serviceable
while extraction degrades.  This module provides both halves of
that contract:

* **Deterministic fault injection** — a :class:`FaultPlan` makes a
  chosen stage raise, hang, crash the worker, or return corrupt
  output, either for explicit match ids or probabilistically with a
  seeded hash, so every failure mode has a reproducible test.
* **The machinery to survive it** — :class:`StageRunner` gives every
  per-match stage bounded retries with exponential backoff and an
  optional wall-clock timeout;
  :class:`~repro.core.parallel.ParallelPipelineExecutor` resubmits
  tasks lost to worker crashes to a fresh pool; and matches whose
  retries are exhausted are *quarantined* — skipped, recorded in a
  :class:`QuarantineReport` on the pipeline result — while the
  surviving corpus is still indexed and searchable.

The survivors' indexes are bit-identical to a clean run over only
the surviving matches, at any worker count; the property tests in
``tests/integration/test_resilience_properties.py`` enforce this.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (TYPE_CHECKING, Dict, FrozenSet, Iterator, List,
                    Optional, Tuple)

from repro.errors import (CorruptOutputError, InjectedFaultError,
                          MatchProcessingError, ResilienceError,
                          StageTimeoutError, WorkerCrashError)

if TYPE_CHECKING:  # pragma: no cover - import cycle is type-only
    from repro.core.parallel import MatchPartial

__all__ = ["STAGE_NAMES", "STAGE_ALIASES", "FaultMode", "FaultSpec",
           "FaultPlan", "RetryPolicy", "ResilienceConfig",
           "StageRunner", "QuarantineRecord", "QuarantineReport",
           "ExecutionOutcome", "validate_partial"]


#: per-match stages in execution order (the profiler uses the same
#: names); ``crawl`` is the artifact validation the resilience layer
#: prepends.
STAGE_NAMES: Tuple[str, ...] = (
    "crawl", "trad_index", "populate_basic", "basic_ext_index",
    "extraction", "populate_full", "full_ext_index", "inference",
    "full_inf_index", "phr_exp_index")

#: component aliases accepted wherever a stage name is expected, so a
#: fault plan can say "the extractor" without naming internal stages.
STAGE_ALIASES: Dict[str, Tuple[str, ...]] = {
    "crawler": ("crawl",),
    "extractor": ("extraction",),
    "populator": ("populate_basic", "populate_full"),
    "reasoner": ("inference",),
    "indexer": ("trad_index", "basic_ext_index", "full_ext_index",
                "full_inf_index", "phr_exp_index"),
}


class FaultMode:
    """How an injected fault manifests."""

    RAISE = "raise"        #: the stage raises InjectedFaultError
    HANG = "hang"          #: the stage blocks for ``hang_seconds``
    CORRUPT = "corrupt"    #: the stage returns invalid (None) output
    CRASH = "crash"        #: the worker process dies (os._exit)

    ALL = (RAISE, HANG, CORRUPT, CRASH)


def resolve_stages(stage: str) -> Tuple[str, ...]:
    """Expand a stage name or component alias to concrete stages."""
    if stage in STAGE_ALIASES:
        return STAGE_ALIASES[stage]
    if stage in STAGE_NAMES:
        return (stage,)
    known = ", ".join((*STAGE_NAMES, *STAGE_ALIASES))
    raise ResilienceError(f"unknown fault stage {stage!r}; "
                          f"expected one of: {known}")


@dataclass(frozen=True)
class FaultSpec:
    """One deterministic fault rule.

    ``times`` bounds how many *attempts* the fault survives: a spec
    with ``times=2`` fails the first two attempts of each targeted
    stage and lets the third succeed (a transient fault), while
    ``times=None`` fails every attempt (a permanent, poison match).
    ``probability < 1`` gates firing on a seeded hash of
    ``(seed, match, stage, attempt)``, so probabilistic plans are
    still reproducible across runs and across worker processes.
    """

    stage: str
    mode: str = FaultMode.RAISE
    match_ids: Optional[FrozenSet[str]] = None
    probability: float = 1.0
    times: Optional[int] = None
    hang_seconds: float = 30.0

    def __post_init__(self) -> None:
        resolve_stages(self.stage)
        if self.mode not in FaultMode.ALL:
            raise ResilienceError(
                f"unknown fault mode {self.mode!r}; expected one of: "
                f"{', '.join(FaultMode.ALL)}")
        if not 0.0 <= self.probability <= 1.0:
            raise ResilienceError(
                f"fault probability must be in [0, 1], got "
                f"{self.probability}")
        if self.times is not None and self.times < 1:
            raise ResilienceError(
                f"fault times must be >= 1 or None, got {self.times}")
        if isinstance(self.match_ids, (list, tuple, set)):
            object.__setattr__(self, "match_ids",
                               frozenset(self.match_ids))

    def targets(self, stage: str, match_id: str) -> bool:
        if stage not in resolve_stages(self.stage):
            return False
        return self.match_ids is None or match_id in self.match_ids

    def to_json(self) -> dict:
        data: dict = {"stage": self.stage, "mode": self.mode}
        if self.match_ids is not None:
            data["match_ids"] = sorted(self.match_ids)
        if self.probability < 1.0:
            data["probability"] = self.probability
        if self.times is not None:
            data["times"] = self.times
        if self.mode == FaultMode.HANG:
            data["hang_seconds"] = self.hang_seconds
        return data

    @classmethod
    def from_json(cls, data: dict) -> "FaultSpec":
        match_ids = data.get("match_ids")
        return cls(stage=data["stage"],
                   mode=data.get("mode", FaultMode.RAISE),
                   match_ids=(frozenset(match_ids)
                              if match_ids is not None else None),
                   probability=data.get("probability", 1.0),
                   times=data.get("times"),
                   hang_seconds=data.get("hang_seconds", 30.0))


@dataclass(frozen=True)
class FaultPlan:
    """A picklable collection of fault rules plus the RNG seed."""

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.specs, tuple):
            object.__setattr__(self, "specs", tuple(self.specs))

    def spec_for(self, stage: str, match_id: str,
                 attempt: int) -> Optional[FaultSpec]:
        """The first spec that fires for this stage attempt, if any."""
        for index, spec in enumerate(self.specs):
            if not spec.targets(stage, match_id):
                continue
            if spec.times is not None and attempt >= spec.times:
                continue
            if spec.probability >= 1.0 or self._roll(
                    index, stage, match_id, attempt) < spec.probability:
                return spec
        return None

    def _roll(self, index: int, stage: str, match_id: str,
              attempt: int) -> float:
        """A deterministic uniform draw in [0, 1).

        Keyed on the plan seed plus the full decision coordinates and
        hashed with blake2b (not :func:`hash`, which is randomized
        per interpreter), so serial and pool runs agree.
        """
        key = f"{self.seed}:{index}:{stage}:{match_id}:{attempt}"
        digest = hashlib.blake2b(key.encode(), digest_size=8).digest()
        return int.from_bytes(digest, "big") / 2 ** 64

    def to_json(self) -> dict:
        return {"seed": self.seed,
                "specs": [spec.to_json() for spec in self.specs]}

    @classmethod
    def from_json(cls, data: dict) -> "FaultPlan":
        return cls(specs=tuple(FaultSpec.from_json(entry)
                               for entry in data.get("specs", [])),
                   seed=data.get("seed", 0))

    @classmethod
    def from_file(cls, path: "Path | str") -> "FaultPlan":
        return cls.from_json(json.loads(Path(path).read_text()))


@dataclass(frozen=True)
class RetryPolicy:
    """Per-stage retry budget, backoff curve and timeouts."""

    #: retries per stage *after* the first attempt (so a stage runs
    #: at most ``max_retries + 1`` times).
    max_retries: int = 2
    backoff_base: float = 0.02
    backoff_factor: float = 2.0
    backoff_max: float = 1.0
    #: fraction of each backoff delay shaved off by a seeded roll, so
    #: simultaneous retries at high worker counts don't stampede in
    #: lockstep.  A delay stays within ``[(1 - jitter) * d, d]`` of
    #: the un-jittered delay ``d``; 0 disables jitter entirely.
    jitter: float = 0.1
    #: seed for the jitter rolls — delays are a pure function of
    #: (seed, key, retry_index), so runs are reproducible.
    jitter_seed: int = 0
    #: wall-clock bound per stage attempt; enforced by running the
    #: stage on a watchdog thread, so a hung stage is abandoned and
    #: counted as a failed attempt.
    stage_timeout: Optional[float] = None
    #: pool-level backstop: how long the parent waits on one task's
    #: future before declaring the worker hung and rebuilding the
    #: pool.  ``None`` waits forever (in-worker stage timeouts are
    #: the first line of defense).
    task_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ResilienceError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if not 0.0 <= self.jitter < 1.0:
            raise ResilienceError(
                f"jitter must be in [0, 1), got {self.jitter}")

    def delay(self, retry_index: int, key: str = "") -> float:
        """Backoff before retry ``retry_index`` (0-based).

        ``key`` decorrelates concurrent retriers (the stage runner
        passes ``"match_id:stage"``): distinct keys draw distinct
        jitter rolls, while the same (seed, key, retry_index) always
        yields the same delay.
        """
        capped = min(self.backoff_base * self.backoff_factor ** retry_index,
                     self.backoff_max)
        if not self.jitter:
            return capped
        token = f"{self.jitter_seed}:{key}:{retry_index}"
        digest = hashlib.blake2b(token.encode(), digest_size=8).digest()
        roll = int.from_bytes(digest, "big") / 2 ** 64
        return capped * (1.0 - self.jitter * roll)


@dataclass(frozen=True)
class ResilienceConfig:
    """Everything ``pipeline.run`` needs to survive flaky input."""

    retry: RetryPolicy = RetryPolicy()
    #: degrade=True quarantines poison matches and keeps going;
    #: degrade=False re-raises the first permanent failure.
    degrade: bool = True
    fault_plan: Optional[FaultPlan] = None
    #: resubmissions after a worker crash, per task; ``None`` follows
    #: ``retry.max_retries`` so serial and pool runs agree on when a
    #: repeatedly-crashing match is declared poison.
    crash_retries: Optional[int] = None

    @property
    def crash_budget(self) -> int:
        return (self.retry.max_retries if self.crash_retries is None
                else self.crash_retries)


# ----------------------------------------------------------------------
# quarantine
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class QuarantineRecord:
    """One poison match: where and how it died."""

    match_id: str
    position: int
    stage: str
    error_type: str
    error: str
    attempts: int

    def to_json(self) -> dict:
        return {"match_id": self.match_id, "position": self.position,
                "stage": self.stage, "error_type": self.error_type,
                "error": self.error, "attempts": self.attempts}


@dataclass
class QuarantineReport:
    """Every match skipped by a degraded run, in corpus order."""

    records: List[QuarantineRecord] = field(default_factory=list)

    def add(self, record: QuarantineRecord) -> None:
        self.records.append(record)
        self.records.sort(key=lambda item: item.position)

    def match_ids(self) -> List[str]:
        return [record.match_id for record in self.records]

    def __len__(self) -> int:
        return len(self.records)

    def __bool__(self) -> bool:
        return bool(self.records)

    def __iter__(self) -> Iterator[QuarantineRecord]:
        return iter(self.records)

    def to_json(self) -> list:
        return [record.to_json() for record in self.records]

    def render(self) -> str:
        """Human-readable summary (printed by the CLI)."""
        if not self.records:
            return "quarantine: empty (no matches skipped)"
        lines = [f"quarantine: {len(self.records)} match(es) skipped"]
        for record in self.records:
            lines.append(
                f"  {record.match_id}  stage={record.stage} "
                f"attempts={record.attempts} "
                f"{record.error_type}: {record.error}")
        return "\n".join(lines)


@dataclass
class ExecutionOutcome:
    """What a resilient executor run produced."""

    partials: List["MatchPartial"]
    quarantine: QuarantineReport = field(default_factory=QuarantineReport)
    counters: Dict[str, int] = field(default_factory=dict)

    def bump(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount


# ----------------------------------------------------------------------
# stage execution
# ----------------------------------------------------------------------


class StageRunner:
    """Runs one match's stages under the resilience policy.

    Each stage call gets fault injection, up to ``max_retries``
    retries with exponential backoff, and an optional watchdog-thread
    timeout.  A stage whose budget is exhausted raises
    :class:`~repro.errors.MatchProcessingError`, which the executor
    converts into a quarantine record (or re-raises under
    fail-fast).

    ``base_attempt`` is the task's resubmission count: attempt
    numbers seen by the fault plan are ``base_attempt + stage_retry``
    so a crash fault consumed by a pool resubmission and one consumed
    by an in-process retry burn the same budget — that keeps the set
    of surviving matches identical at any worker count.
    """

    def __init__(self, config: ResilienceConfig, match_id: str,
                 base_attempt: int = 0,
                 allow_crash: bool = False,
                 tracer=None) -> None:
        self.config = config
        self.match_id = match_id
        self.base_attempt = base_attempt
        #: real os._exit crashes only inside pool workers; in-process
        #: execution converts them to WorkerCrashError (see module
        #: docs) so workers=1 survives the same plans.
        self.allow_crash = allow_crash
        #: optional :class:`~repro.core.observability.Tracer`; retry
        #: and fault-injection events land on the current stage span.
        self.tracer = tracer
        self.retries = 0
        self.faults_injected = 0

    def _event(self, name: str, **attributes) -> None:
        if self.tracer is not None:
            self.tracer.event(name, **attributes)

    def run(self, stage: str, func):
        policy = self.config.retry
        for stage_retry in range(policy.max_retries + 1):
            try:
                return self._attempt(stage,
                                     self.base_attempt + stage_retry,
                                     func)
            except MatchProcessingError:
                raise
            except Exception as error:
                if stage_retry >= policy.max_retries:
                    raise MatchProcessingError.from_exception(
                        self.match_id, stage,
                        self.base_attempt + stage_retry + 1,
                        error, retries=self.retries,
                        faults_injected=self.faults_injected
                    ) from error
                self.retries += 1
                delay = policy.delay(stage_retry,
                                     key=f"{self.match_id}:{stage}")
                self._event("retry", stage=stage,
                            attempt=self.base_attempt + stage_retry + 1,
                            error=type(error).__name__,
                            delay_seconds=round(delay, 6))
                time.sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover

    def _attempt(self, stage: str, attempt: int, func):
        plan = self.config.fault_plan
        spec = (plan.spec_for(stage, self.match_id, attempt)
                if plan is not None else None)
        corrupting = False
        if spec is not None:
            self.faults_injected += 1
            self._event("fault_injected", stage=stage, mode=spec.mode,
                        attempt=attempt)
            if spec.mode == FaultMode.RAISE:
                raise InjectedFaultError(stage, self.match_id)
            if spec.mode == FaultMode.CRASH:
                if self.allow_crash:
                    os._exit(17)  # the real thing: the worker dies
                raise WorkerCrashError(
                    f"injected worker crash at stage {stage!r} for "
                    f"match {self.match_id!r} (simulated in-process)")
            if spec.mode == FaultMode.HANG:
                func = self._hang_stage(stage, spec)
            elif spec.mode == FaultMode.CORRUPT:
                corrupting = True
        result = None if corrupting else self._call(stage, func)
        if result is None:
            # stages always produce a value; None means the stage (or
            # an injected corruption) returned garbage.
            raise CorruptOutputError(
                f"stage {stage!r} for match {self.match_id!r} "
                f"returned corrupt (empty) output")
        return result

    def _hang_stage(self, stage: str, spec: FaultSpec):
        def hang():
            time.sleep(spec.hang_seconds)
            raise InjectedFaultError(
                stage, self.match_id,
                f"hang of {spec.hang_seconds:g}s elapsed")
        return hang

    def _call(self, stage: str, func):
        timeout = self.config.retry.stage_timeout
        if timeout is None:
            return func()
        box: dict = {}

        def target():
            try:
                box["result"] = func()
            except BaseException as error:  # noqa: BLE001 - re-raised
                box["error"] = error

        worker = threading.Thread(target=target, daemon=True,
                                  name=f"stage-{stage}-{self.match_id}")
        worker.start()
        worker.join(timeout)
        if worker.is_alive():
            # abandon the hung thread (daemon); the attempt failed.
            raise StageTimeoutError(stage, self.match_id, timeout)
        if "error" in box:
            raise box["error"]
        return box.get("result")


def validate_partial(task, partial) -> None:
    """Cheap invariant checks on a finished :class:`MatchPartial`.

    Catches corrupt partials (injected or organic) before they are
    merged into the global indexes: the partial must belong to the
    task's match, contain every index variant, and its TRAD index
    must cover each narration.
    """
    from repro.core.names import IndexName
    from repro.search.index import InvertedIndex

    match_id = task.crawled.match_id
    if partial.match_id != match_id:
        raise CorruptOutputError(
            f"partial for match {match_id!r} reports match id "
            f"{partial.match_id!r}")
    for name in IndexName.BUILT:
        index = partial.indexes.get(name)
        if not isinstance(index, InvertedIndex):
            raise CorruptOutputError(
                f"partial for match {match_id!r} is missing index "
                f"{name}")
    trad_docs = partial.indexes[IndexName.TRAD].doc_count
    if trad_docs != len(task.crawled.narrations):
        raise CorruptOutputError(
            f"partial for match {match_id!r} indexed {trad_docs} "
            f"narration docs, expected "
            f"{len(task.crawled.narrations)}")


def config_with_degrade(config: Optional[ResilienceConfig],
                        degrade: Optional[bool],
                        fault_plan: Optional[FaultPlan]
                        ) -> Optional[ResilienceConfig]:
    """Fold the ``pipeline.run`` convenience kwargs into a config."""
    if config is None:
        if degrade is None and fault_plan is None:
            return None
        config = ResilienceConfig()
    if degrade is not None:
        config = replace(config, degrade=degrade)
    if fault_plan is not None:
        config = replace(config, fault_plan=fault_plan)
    return config
