"""Semantic indexing (paper §3.6.1) — the system's core contribution.

Builds the paper's ladder of Lucene indexes:

* **TRAD** — one document per narration, free text only (the
  traditional baseline).
* **BASIC_EXT** — one document per event of the *initial* OWL models
  (basic crawl information + unknown narrations).
* **FULL_EXT** — one document per event of the *extracted* models (IE
  output).
* **FULL_INF** — one document per event of the *inferred* models, with
  the additional Table 2 fields: all inferred event types, inferred
  player properties and rule-derived information.
* **PHR_EXP** — FULL_INF plus the §6 phrasal-expression fields.

Every document carries a ``docKey`` provenance field so the evaluation
harness can join results to gold relevance judgments.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.core.fields import (F, FIELD_BOOSTS, camel_to_words,
                               class_label)
from repro.core.profiling import CacheCounter
from repro.ontology.model import Individual, Ontology
from repro.rdf.namespace import SOCCER
from repro.rdf.term import URIRef
from repro.reasoning.taxonomy import Taxonomy
from repro.search.analysis import (KeywordAnalyzer, SimpleAnalyzer,
                                   StandardAnalyzer)
from repro.search.document import Document, Field
from repro.search.index import IndexWriter, InvertedIndex, PerFieldAnalyzer
from repro.soccer.crawler import CrawledMatch

__all__ = ["SemanticIndexer", "default_index_analyzer"]


def default_index_analyzer() -> PerFieldAnalyzer:
    """The analyzer configuration shared by indexing and querying."""
    return PerFieldAnalyzer(
        default=StandardAnalyzer(),
        per_field={
            F.SUBJECT_PHRASE: SimpleAnalyzer(),
            F.OBJECT_PHRASE: SimpleAnalyzer(),
            F.DOC_KEY: KeywordAnalyzer(),
            F.DATE: SimpleAnalyzer(),
            F.MINUTE: KeywordAnalyzer(),
        })


class SemanticIndexer:
    """Builds all index variants against one shared ontology."""

    def __init__(self, ontology: Ontology,
                 taxonomy: Optional[Taxonomy] = None) -> None:
        self.ontology = ontology
        self.taxonomy = taxonomy or Taxonomy(ontology)
        self.analyzer = default_index_analyzer()
        self._subject_props = self.taxonomy.subproperties(
            SOCCER.subjectPlayer, include_self=True)
        self._object_props = self.taxonomy.subproperties(
            SOCCER.objectPlayer, include_self=True)
        self._subject_team_props = self.taxonomy.subproperties(
            SOCCER.subjectTeam, include_self=True)
        self._object_team_props = self.taxonomy.subproperties(
            SOCCER.objectTeam, include_self=True)
        self._actor_props = self.taxonomy.subproperties(
            SOCCER.actorOfMove, include_self=True)
        # ancestor-closure caches: every event document re-asks the
        # same "is this class an Event/Player?" and label questions,
        # so memoize them per class URI instead of re-walking the
        # taxonomy per document.
        self._event_class_cache: Dict[URIRef, bool] = {}
        self._player_class_cache: Dict[URIRef, bool] = {}
        self._label_cache: Dict[URIRef, str] = {}
        self._cache_counters = {
            "event_class": CacheCounter(),
            "player_class": CacheCounter(),
            "class_label": CacheCounter(),
        }

    # ------------------------------------------------------------------
    # taxonomy / label caches
    # ------------------------------------------------------------------

    def _is_event_class(self, uri: URIRef) -> bool:
        counter = self._cache_counters["event_class"]
        cached = self._event_class_cache.get(uri)
        if cached is not None:
            counter.hit()
            return cached
        counter.miss()
        result = self.taxonomy.is_subclass_of(uri, SOCCER.Event)
        self._event_class_cache[uri] = result
        return result

    def _is_player_class(self, uri: URIRef) -> bool:
        counter = self._cache_counters["player_class"]
        cached = self._player_class_cache.get(uri)
        if cached is not None:
            counter.hit()
            return cached
        counter.miss()
        result = self.taxonomy.is_subclass_of(uri, SOCCER.Player)
        self._player_class_cache[uri] = result
        return result

    def _class_label(self, uri: URIRef) -> str:
        counter = self._cache_counters["class_label"]
        cached = self._label_cache.get(uri)
        if cached is not None:
            counter.hit()
            return cached
        counter.miss()
        label = class_label(self.ontology, uri)
        self._label_cache[uri] = label
        return label

    def cache_stats(self) -> Dict[str, CacheCounter]:
        """Hit/miss counters of the taxonomy and label caches."""
        return dict(self._cache_counters)

    # ------------------------------------------------------------------
    # TRAD
    # ------------------------------------------------------------------

    def build_traditional(self, crawled_matches: Iterable[CrawledMatch],
                          name: str = "TRAD") -> InvertedIndex:
        """Free-text index over raw narrations (§3.1 step 2)."""
        index = InvertedIndex(name)
        writer = IndexWriter(index, self.analyzer)
        for crawled in crawled_matches:
            for position, narration in enumerate(crawled.narrations):
                document = Document()
                document.add(Field(
                    F.DOC_KEY,
                    f"{crawled.match_id}_n{position:04d}"))
                document.add(Field(F.NARRATION, narration.text))
                document.add(Field(F.MINUTE, str(narration.minute)))
                writer.add_document(document)
        return index

    # ------------------------------------------------------------------
    # semantic indexes
    # ------------------------------------------------------------------

    def build_semantic(self, aboxes: Sequence[Ontology], name: str,
                       inferred: bool = False,
                       phrasal: bool = False) -> InvertedIndex:
        """One document per event individual across all match models."""
        index = InvertedIndex(name)
        writer = IndexWriter(index, self.analyzer)
        for abox in aboxes:
            self._index_abox(writer, abox, inferred=inferred,
                             phrasal=phrasal)
        return index

    def _index_abox(self, writer: IndexWriter, abox: Ontology,
                    inferred: bool, phrasal: bool) -> None:
        match = self._find_match(abox)
        match_context = self._match_context(abox, match)
        actor_labels = (self._collect_actor_labels(abox)
                        if inferred else {})
        for individual in abox.individuals():
            if not self._is_event(individual):
                continue
            document = self._event_document(
                abox, individual, match_context,
                actor_labels.get(individual.uri, ()),
                inferred=inferred, phrasal=phrasal)
            writer.add_document(document)

    # ------------------------------------------------------------------
    # document assembly
    # ------------------------------------------------------------------

    def _is_event(self, individual: Individual) -> bool:
        return any(self._is_event_class(t) for t in individual.types)

    def _find_match(self, abox: Ontology) -> Optional[Individual]:
        for individual in abox.individuals(SOCCER.Match):
            return individual
        return None

    def _match_context(self, abox: Ontology,
                       match: Optional[Individual]) -> Dict[str, str]:
        if match is None:
            return {}
        context = {F.MATCH: match.uri.local_name}
        name = match.first(SOCCER.hasName)
        if name is not None:
            context[F.MATCH] = str(name)
        date = match.first(SOCCER.onDate)
        if date is not None:
            context[F.DATE] = str(date)
        for field_name, prop in ((F.TEAM1, SOCCER.homeTeam),
                                 (F.TEAM2, SOCCER.awayTeam)):
            team_uri = match.first(prop)
            if isinstance(team_uri, URIRef) and abox.has_individual(team_uri):
                team_name = abox.individual(team_uri).first(SOCCER.hasName)
                context[field_name] = (str(team_name) if team_name
                                       else team_uri.local_name)
        return context

    def _collect_actor_labels(self, abox: Ontology
                              ) -> Dict[URIRef, Set[str]]:
        """event uri → labels of actorOf… properties pointing at it."""
        labels: Dict[URIRef, Set[str]] = {}
        for individual in abox.individuals():
            for prop in self._actor_props:
                for value in individual.get(prop):
                    if isinstance(value, URIRef):
                        labels.setdefault(value, set()).add(
                            camel_to_words(prop.local_name))
        return labels

    def _event_document(self, abox: Ontology, event: Individual,
                        match_context: Dict[str, str],
                        rule_labels: Iterable[str],
                        inferred: bool, phrasal: bool) -> Document:
        document = Document()
        doc_key = event.first(SOCCER.hasEventId)
        document.add(Field(F.DOC_KEY,
                           str(doc_key) if doc_key is not None
                           else event.uri.local_name))

        event_types = sorted(
            self._class_label(t) for t in event.types
            if self._is_event_class(t))
        document.add(Field(F.EVENT, " ".join(event_types),
                           boost=FIELD_BOOSTS[F.EVENT]))

        for field_name, value in match_context.items():
            document.add(Field(field_name, value,
                               boost=FIELD_BOOSTS.get(field_name, 1.0)))

        minute = event.first(SOCCER.inMinute)
        if minute is not None:
            document.add(Field(F.MINUTE, str(minute)))

        subjects = self._role_names(abox, event, self._subject_props)
        objects = self._role_names(abox, event, self._object_props)
        if subjects:
            document.add(Field(F.SUBJECT_PLAYER, " ".join(subjects),
                               boost=FIELD_BOOSTS[F.SUBJECT_PLAYER]))
        if objects:
            document.add(Field(F.OBJECT_PLAYER, " ".join(objects),
                               boost=FIELD_BOOSTS[F.OBJECT_PLAYER]))

        subject_teams = self._role_names(abox, event,
                                         self._subject_team_props)
        object_teams = self._role_names(abox, event,
                                        self._object_team_props)
        if subject_teams:
            document.add(Field(F.SUBJECT_TEAM, " ".join(subject_teams),
                               boost=FIELD_BOOSTS[F.SUBJECT_TEAM]))
        if object_teams:
            document.add(Field(F.OBJECT_TEAM, " ".join(object_teams),
                               boost=FIELD_BOOSTS[F.OBJECT_TEAM]))

        if inferred:
            subject_props = self._player_type_labels(
                abox, event, self._subject_props)
            object_props = self._player_type_labels(
                abox, event, self._object_props)
            if subject_props:
                document.add(Field(
                    F.SUBJECT_PLAYER_PROP, " ".join(subject_props),
                    boost=FIELD_BOOSTS[F.SUBJECT_PLAYER_PROP]))
            if object_props:
                document.add(Field(
                    F.OBJECT_PLAYER_PROP, " ".join(object_props),
                    boost=FIELD_BOOSTS[F.OBJECT_PLAYER_PROP]))
            rules_text = " ".join(sorted(rule_labels))
            if rules_text:
                document.add(Field(F.FROM_RULES, rules_text,
                                   boost=FIELD_BOOSTS[F.FROM_RULES]))

        if phrasal:
            self._add_phrasal_fields(document, subjects, objects)

        narration = event.first(SOCCER.hasNarration)
        if narration is not None:
            document.add(Field(F.NARRATION, str(narration)))
        return document

    def _role_names(self, abox: Ontology, event: Individual,
                    props: Set[URIRef]) -> List[str]:
        names: List[str] = []
        for prop in sorted(props):
            for value in event.get(prop):
                if isinstance(value, URIRef) and abox.has_individual(value):
                    target = abox.individual(value)
                    name = target.first(SOCCER.hasName)
                    rendered = (str(name) if name is not None
                                else value.local_name.replace("_", " "))
                    if rendered not in names:
                        names.append(rendered)
        return names

    def _player_type_labels(self, abox: Ontology, event: Individual,
                            props: Set[URIRef]) -> List[str]:
        labels: List[str] = []
        for prop in sorted(props):
            for value in event.get(prop):
                if isinstance(value, URIRef) and abox.has_individual(value):
                    player = abox.individual(value)
                    for type_uri in sorted(player.types):
                        if self._is_player_class(type_uri):
                            label = self._class_label(type_uri)
                            if label not in labels:
                                labels.append(label)
        return labels

    def _add_phrasal_fields(self, document: Document,
                            subjects: List[str],
                            objects: List[str]) -> None:
        """§6: concatenate role names with their prepositions.

        Subject words get ``by_``/``of_`` prefixes, object words get
        ``to_``, so "foul by daniel" can address the subject field
        unambiguously.
        """
        subject_tokens = []
        for name in subjects:
            for word in name.lower().split():
                subject_tokens.append(f"by_{word}")
                subject_tokens.append(f"of_{word}")
        object_tokens = []
        for name in objects:
            for word in name.lower().split():
                object_tokens.append(f"to_{word}")
        if subject_tokens:
            document.add(Field(F.SUBJECT_PHRASE, " ".join(subject_tokens),
                               boost=FIELD_BOOSTS[F.SUBJECT_PHRASE]))
        if object_tokens:
            document.add(Field(F.OBJECT_PHRASE, " ".join(object_tokens),
                               boost=FIELD_BOOSTS[F.OBJECT_PHRASE]))
