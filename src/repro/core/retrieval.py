"""Keyword-based semantic retrieval (paper §3.6.2).

The user types a few keywords; each term is fanned out over all
semantic fields with a disjunction-max (so a hit in the boosted
``event`` field dominates), and terms combine under a coordinated
boolean (documents matching more of the query rank higher).  This is
the "slightly modified … default querying and ranking mechanism of
Lucene" the paper describes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.fields import F, QUERY_FIELD_WEIGHTS, SEARCHED_FIELDS
from repro.core.indexer import default_index_analyzer
from repro.core.observability import get_observability
from repro.errors import QueryError
from repro.search.document import Document
from repro.search.index import InvertedIndex, PerFieldAnalyzer
from repro.search.query import (BooleanQuery, DisMaxQuery, Occur, Query,
                                TermQuery)
from repro.search.searcher import IndexSearcher, TopDocs
from repro.search.similarity import ClassicSimilarity, Similarity

__all__ = ["SearchHit", "KeywordSearchEngine"]


@dataclass
class SearchHit:
    """One result of the keyword interface."""

    doc_key: str
    score: float
    document: Document

    @property
    def event_type(self) -> Optional[str]:
        return self.document.get(F.EVENT)

    @property
    def narration(self) -> Optional[str]:
        return self.document.get(F.NARRATION)


class KeywordSearchEngine:
    """Searches one semantic index with plain keywords."""

    def __init__(self, index: InvertedIndex,
                 analyzer: Optional[PerFieldAnalyzer] = None,
                 similarity: Optional[Similarity] = None,
                 fields: Sequence[str] = SEARCHED_FIELDS,
                 tie_breaker: float = 0.1,
                 cache_size: int = 256) -> None:
        self.index = index
        self.analyzer = analyzer or default_index_analyzer()
        self.searcher = IndexSearcher(index,
                                      similarity or ClassicSimilarity(),
                                      cache_size=cache_size)
        self.fields = list(fields)
        self.tie_breaker = tie_breaker
        self._query_trees: dict = {}

    def cache_info(self):
        """Hit/miss statistics of the query result cache."""
        return self.searcher.cache.cache_info()

    # ------------------------------------------------------------------

    def build_query(self, text: str) -> Query:
        """Keyword text → multi-field query tree.

        The tree is a pure function of the text and the engine's
        configuration, and nothing downstream mutates it, so repeat
        texts share one memoized tree instead of re-allocating a
        clause per term per field every request."""
        cached = self._query_trees.get(text)
        if cached is not None:
            return cached
        terms = self.analyzer.for_field(F.NARRATION).terms(text)
        if not terms:
            raise QueryError(f"query {text!r} has no searchable terms")
        outer = BooleanQuery()
        for term in terms:
            per_field = [
                TermQuery(field_name, term,
                          boost=QUERY_FIELD_WEIGHTS.get(field_name, 1.0))
                for field_name in self.fields]
            outer.add(DisMaxQuery(per_field, tie_breaker=self.tie_breaker),
                      Occur.SHOULD)
        query: Query = outer
        if len(outer.clauses) == 1:
            query = outer.clauses[0].query
        trees = self._query_trees
        if len(trees) >= 8192:          # bound the memo like a cache
            trees.pop(next(iter(trees)))
        trees[text] = query
        return query

    def search(self, text: str,
               limit: Optional[int] = None) -> List[SearchHit]:
        """Run a keyword query; hits sorted by descending score."""
        return self.search_detailed(text, limit)[0]

    def search_detailed(self, text: str, limit: Optional[int] = None
                        ) -> tuple:
        """Like :meth:`search`, plus the underlying :class:`TopDocs`.

        Returns ``(hits, top)``.  Serving layers use ``top.cached``
        and ``top.generation`` to key response-byte caches on exactly
        the snapshot the query was answered from."""
        obs = get_observability()
        started = time.perf_counter()
        with obs.tracer.span("query", engine="keyword",
                             index=self.index.name):
            with obs.tracer.span("query.parse", text=text[:120]):
                query = self.build_query(text)
            top = self.searcher.search(query, limit)
            hits = self._hits(top)
        if obs.metrics.enabled:
            obs.metrics.counter("queries_total", "queries served",
                                engine="keyword").inc()
            obs.metrics.histogram(
                "query_latency_seconds",
                "end-to-end keyword query latency"
            ).observe(time.perf_counter() - started)
        return hits, top

    def search_query(self, query: Query,
                     limit: Optional[int] = None) -> List[SearchHit]:
        """Run a pre-built query tree (used by PHR_EXP and ablations)."""
        return self._hits(self.searcher.search(query, limit))

    def _hits(self, top: TopDocs) -> List[SearchHit]:
        hits = []
        for scored in top:
            document = self.searcher.document(scored.doc_id)
            hits.append(SearchHit(
                doc_key=document.get(F.DOC_KEY) or str(scored.doc_id),
                score=scored.score,
                document=document))
        return hits
