"""Phrasal expression support (paper §6).

Solves the structural-ambiguity problem of bag-of-words queries:
"foul Alex Ronaldo" cannot say who fouled whom.  With the PHR_EXP
index's ``subjectPhrase``/``objectPhrase`` fields (built by the
indexer), simple prepositional phrases in the query — "by X", "to X",
"of X" — are rewritten into role-qualified terms:

    foul by Daniel to Florent
    → event:foul  subjectPhrase:by_daniel  objectPhrase:to_florent
"""

from __future__ import annotations

import re
import time
from typing import List, Optional, Tuple

from repro.core.fields import F, SEARCHED_FIELDS
from repro.core.indexer import default_index_analyzer
from repro.core.observability import get_observability
from repro.core.retrieval import KeywordSearchEngine, SearchHit
from repro.errors import QueryError
from repro.search.index import InvertedIndex, PerFieldAnalyzer
from repro.search.query import (BooleanQuery, DisMaxQuery, Occur, Query,
                                TermQuery)

__all__ = ["PhrasalQueryParser", "PhrasalSearchEngine"]

_PHRASE = re.compile(r"\b(by|to|of)\s+([A-Za-z'][\w']*)", re.IGNORECASE)

#: preposition → (field, prefix): "by"/"of" select the subject role,
#: "to" the object role.
_ROLE_FOR_PREPOSITION = {
    "by": (F.SUBJECT_PHRASE, "by_"),
    "of": (F.SUBJECT_PHRASE, "of_"),
    "to": (F.OBJECT_PHRASE, "to_"),
}


class PhrasalQueryParser:
    """Splits a keyword query into role phrases + plain terms."""

    def __init__(self, analyzer: Optional[PerFieldAnalyzer] = None) -> None:
        self.analyzer = analyzer or default_index_analyzer()

    def parse_parts(self, text: str
                    ) -> Tuple[List[str], List[Tuple[str, str]]]:
        """Return (plain terms, [(field, prefixed_term), …])."""
        role_terms: List[Tuple[str, str]] = []

        def replace(match: re.Match) -> str:
            preposition = match.group(1).lower()
            name = match.group(2).lower()
            field_name, prefix = _ROLE_FOR_PREPOSITION[preposition]
            role_terms.append((field_name, prefix + name))
            return " "

        remainder = _PHRASE.sub(replace, text)
        plain = self.analyzer.for_field(F.NARRATION).terms(remainder)
        return plain, role_terms


class PhrasalSearchEngine:
    """Keyword search over a PHR_EXP index with phrase rewriting."""

    def __init__(self, index: InvertedIndex,
                 analyzer: Optional[PerFieldAnalyzer] = None) -> None:
        self.engine = KeywordSearchEngine(index, analyzer)
        self.parser = PhrasalQueryParser(analyzer)

    def build_query(self, text: str) -> Query:
        plain, role_terms = self.parser.parse_parts(text)
        if not plain and not role_terms:
            raise QueryError(f"query {text!r} has no searchable terms")
        outer = BooleanQuery()
        for term in plain:
            per_field = [TermQuery(field_name, term)
                         for field_name in SEARCHED_FIELDS]
            outer.add(DisMaxQuery(per_field, tie_breaker=0.1),
                      Occur.SHOULD)
        for field_name, term in role_terms:
            # role phrases are requirements, not hints: a query that
            # names the subject must not match docs where the player
            # is the object (the Table 6 discrimination).
            outer.add(TermQuery(field_name, term), Occur.MUST)
        if len(outer.clauses) == 1 and outer.clauses[0].occur is Occur.SHOULD:
            return outer.clauses[0].query
        return outer

    def search(self, text: str,
               limit: Optional[int] = None) -> List[SearchHit]:
        obs = get_observability()
        started = time.perf_counter()
        with obs.tracer.span("query", engine="phrasal",
                             index=self.engine.index.name):
            with obs.tracer.span("query.parse", phrasal=True,
                                 text=text[:120]):
                query = self.build_query(text)
            hits = self.engine.search_query(query, limit)
        if obs.metrics.enabled:
            obs.metrics.counter("queries_total", "queries served",
                                engine="phrasal").inc()
            obs.metrics.histogram(
                "query_latency_seconds",
                "end-to-end keyword query latency"
            ).observe(time.perf_counter() - started)
        return hits
