"""Tracing + metrics for the ingest and query paths.

The ROADMAP's north star is a serving system, and a serving system
must be able to *see* where time and failures go — per request, not
just in the coarse :class:`~repro.core.profiling.StageProfiler`
totals.  This module is the cross-cutting layer every scaling PR
measures against:

* **Tracing** — nested :class:`Span`s with monotonic timing,
  per-match and per-query trace trees, and deterministic span ids
  (content-addressed from the span's path in the tree, so two runs of
  the same workload produce the same ids at any worker count).
  Worker processes build their match subtree locally; the subtree is
  pickled back inside the :class:`~repro.core.parallel.MatchPartial`
  and *stitched* under the parent's ``ingest`` span.
* **Metrics** — a registry of counters, gauges and fixed-bucket
  histograms with JSON and Prometheus-text exporters.  Ingest metrics
  are folded in by the pipeline from the per-match partials (so they
  are complete at any worker count); query metrics are recorded where
  the query executes.  Reasoning telemetry travels the same road: the
  reasoner opens ``reason > rules/realize/consistency`` spans under
  each match's ``inference`` span and ships a picklable
  ``ReasonStats`` in the partial, which the pipeline folds into the
  ``reason_*`` metric family (stage seconds, matches/firings, delta
  sizes, per-rule firing histograms) — separate names from the
  ``ingest_*`` family so existing dashboards keep their exact label
  universe.
* **A process-wide switchboard** — :func:`get_observability` returns
  the installed :class:`Observability` bundle.  The default bundle is
  *disabled*: every span is a no-op context manager and every
  instrument a shared null object, so the hot paths pay one attribute
  check.  Disabled observability leaves pipeline output byte-identical
  (guarded by ``tests/core/test_observability.py``).

Span model, metric names and exporter formats are documented in
``docs/observability.md``.
"""

from __future__ import annotations

import hashlib
import math
import random
import threading
import time
from bisect import bisect_left
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "TRACE_SCHEMA", "METRICS_SCHEMA", "DEFAULT_LATENCY_BUCKETS",
    "Span", "Tracer", "Counter", "Gauge", "Histogram",
    "MetricsRegistry", "Observability", "get_observability",
    "install_observability", "observed", "fold_cache_info",
    "validate_trace", "render_metrics", "sorted_quantile",
    "bucket_quantile",
]

TRACE_SCHEMA = "repro.trace/v1"
METRICS_SCHEMA = "repro.metrics/v1"

#: default histogram buckets (seconds), tuned for sub-second queries
#: with a tail for cold pipeline-backed searches.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 10.0)


# ----------------------------------------------------------------------
# tracing
# ----------------------------------------------------------------------


@dataclass
class Span:
    """One timed operation in a trace tree.

    ``started`` is a process-local ``perf_counter`` value, so offsets
    are only meaningful relative to spans of the same process;
    subtrees adopted across a process boundary are marked ``foreign``
    and export a null offset.  Span ids are not stored — they are
    derived at export time from the span's path (see
    :meth:`Tracer.to_json`), which makes them deterministic across
    runs and worker counts.
    """

    name: str
    started: float = 0.0
    duration: float = 0.0
    attributes: Dict[str, Any] = field(default_factory=dict)
    events: List[Dict[str, Any]] = field(default_factory=list)
    children: List["Span"] = field(default_factory=list)
    #: adopted from another process; offset relative to the parent is
    #: unknowable (different perf_counter epochs).
    foreign: bool = False

    def add_event(self, name: str, **attributes: Any) -> None:
        self.events.append({"name": name, **attributes})


def _span_id(path: str) -> str:
    """Deterministic 16-hex id from the span's path in the tree."""
    return hashlib.blake2b(path.encode(), digest_size=8).hexdigest()


def _export_span(span: Span, parent_path: str, sibling_index: int,
                 parent_id: Optional[str],
                 parent_started: Optional[float]) -> dict:
    path = f"{parent_path}/{span.name}[{sibling_index}]"
    span_id = _span_id(path)
    if span.foreign or parent_started is None:
        offset = None
    else:
        offset = round(max(0.0, span.started - parent_started), 6)
    sibling_counts: Dict[str, int] = {}
    children = []
    for child in span.children:
        index = sibling_counts.get(child.name, 0)
        sibling_counts[child.name] = index + 1
        children.append(_export_span(child, path, index, span_id,
                                     span.started))
    return {
        "name": span.name,
        "span_id": span_id,
        "parent_id": parent_id,
        "offset_seconds": offset,
        "duration_seconds": round(span.duration, 6),
        "attributes": dict(span.attributes),
        "events": [dict(event) for event in span.events],
        "children": children,
    }


class Tracer:
    """Builds one trace tree via a stack of open spans.

    A disabled tracer is a pile of no-ops: ``span`` yields ``None``
    without touching the clock, ``event`` and ``adopt`` return
    immediately.  The tracer is deliberately single-threaded (one
    stack); concurrent tracing happens by giving each worker its own
    tracer and stitching the subtree back with :meth:`adopt`.
    """

    def __init__(self, enabled: bool = True, name: str = "repro") -> None:
        self.enabled = enabled
        self.root: Optional[Span] = None
        self._stack: List[Span] = []
        if enabled:
            self.root = Span(name=name, started=time.perf_counter())
            self._stack = [self.root]

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Optional[Span]]:
        """Open a child span under the current one (no-op if disabled)."""
        if not self.enabled:
            yield None
            return
        span = Span(name=name, started=time.perf_counter(),
                    attributes=dict(attributes))
        self._stack[-1].children.append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            span.duration = time.perf_counter() - span.started
            self._stack.pop()

    def event(self, name: str, *, span: Optional[Span] = None,
              **attributes: Any) -> None:
        """Attach an event to ``span`` (default: the current span)."""
        if not self.enabled:
            return
        target = span if span is not None else self._stack[-1]
        target.add_event(name, **attributes)

    def current(self) -> Optional[Span]:
        return self._stack[-1] if self.enabled else None

    def adopt(self, span: Optional[Span],
              into: Optional[Span] = None) -> None:
        """Stitch a foreign subtree (e.g. shipped back from a worker
        process) under ``into`` (default: the current span)."""
        if not self.enabled or span is None:
            return
        span.foreign = True
        parent = into if into is not None else self._stack[-1]
        parent.children.append(span)

    def close(self) -> None:
        """Seal the root span's duration (idempotent)."""
        if self.enabled and self.root is not None:
            self.root.duration = time.perf_counter() - self.root.started

    def to_json(self) -> dict:
        """Export the trace with deterministic path-derived span ids."""
        if not self.enabled or self.root is None:
            return {"schema": TRACE_SCHEMA, "root": None}
        if self.root.duration == 0.0:
            self.close()
        return {"schema": TRACE_SCHEMA,
                "root": _export_span(self.root, "", 0, None, None)}


def validate_trace(data: dict) -> None:
    """Validate an exported trace against the ``repro.trace/v1``
    schema; raises :class:`ValueError` on the first violation.  Used
    by the test suite and the CI smoke job."""
    if not isinstance(data, dict) or data.get("schema") != TRACE_SCHEMA:
        raise ValueError(f"not a {TRACE_SCHEMA} document")
    root = data.get("root")
    if root is None:
        return
    seen_ids: set = set()

    def check(node: dict, parent_id: Optional[str]) -> None:
        if not isinstance(node, dict):
            raise ValueError("span node is not an object")
        for key in ("name", "span_id", "parent_id", "offset_seconds",
                    "duration_seconds", "attributes", "events",
                    "children"):
            if key not in node:
                raise ValueError(f"span missing key {key!r}")
        if not isinstance(node["name"], str) or not node["name"]:
            raise ValueError("span name must be a non-empty string")
        span_id = node["span_id"]
        if (not isinstance(span_id, str) or len(span_id) != 16
                or any(c not in "0123456789abcdef" for c in span_id)):
            raise ValueError(f"bad span id {span_id!r}")
        if span_id in seen_ids:
            raise ValueError(f"duplicate span id {span_id!r}")
        seen_ids.add(span_id)
        if node["parent_id"] != parent_id:
            raise ValueError(
                f"span {node['name']!r} has parent_id "
                f"{node['parent_id']!r}, expected {parent_id!r}")
        duration = node["duration_seconds"]
        if not isinstance(duration, (int, float)) or duration < 0:
            raise ValueError(f"bad duration {duration!r}")
        offset = node["offset_seconds"]
        if offset is not None and (not isinstance(offset, (int, float))
                                   or offset < 0):
            raise ValueError(f"bad offset {offset!r}")
        if not isinstance(node["attributes"], dict):
            raise ValueError("span attributes must be an object")
        if not isinstance(node["events"], list):
            raise ValueError("span events must be a list")
        for event in node["events"]:
            if not isinstance(event, dict) or "name" not in event:
                raise ValueError(f"bad span event {event!r}")
        for child in node["children"]:
            check(child, span_id)

    check(root, None)


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------


def sorted_quantile(values: Sequence[float], q: float) -> float:
    """Nearest-rank quantile over an ascending-**sorted** sequence.

    Defined as the smallest element ``v`` such that at least
    ``ceil(q * n)`` observations are ``<= v`` (so ``q=0.5`` of four
    values is the second one, and ``q=1.0`` is the maximum).  This is
    the oracle definition every other percentile source in this module
    — the exact reservoir and the bucket interpolation — is tested
    against.
    """
    if not values:
        raise ValueError("quantile of an empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    rank = max(1, math.ceil(q * len(values)))
    return values[rank - 1]


def bucket_quantile(buckets: Sequence[float],
                    bucket_counts: Sequence[int], q: float) -> float:
    """Estimate a quantile from fixed-bucket counts (the
    cross-process fallback when no reservoir travelled with the data,
    e.g. a metrics JSON export merged over worker processes).

    Interpolation contract (documented here, relied on by
    ``docs/observability.md`` and the load harness):

    * find the bucket holding the nearest-rank target
      ``ceil(q * total)`` in cumulative order;
    * assume observations spread **uniformly** across that bucket's
      ``(lower, upper]`` range and interpolate linearly by the rank's
      position within the bucket (the Prometheus
      ``histogram_quantile`` convention);
    * the first bucket's lower bound is ``0.0`` (latencies are
      non-negative), and the overflow (+Inf) bucket collapses to the
      highest finite boundary — beyond the last bound the histogram
      simply cannot resolve, so the estimate saturates there.

    The estimate is therefore never off by more than the width of the
    bucket the true value landed in (guarded by a property test
    against :func:`sorted_quantile`).
    """
    if len(bucket_counts) != len(buckets) + 1:
        raise ValueError(
            f"want {len(buckets) + 1} bucket counts (incl. overflow), "
            f"got {len(bucket_counts)}")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    total = sum(bucket_counts)
    if total == 0:
        raise ValueError("quantile of an empty histogram")
    rank = max(1, math.ceil(q * total))
    running = 0
    for position, count in enumerate(bucket_counts):
        running += count
        if count and running >= rank:
            if position >= len(buckets):       # the +Inf bucket
                return buckets[-1]
            upper = buckets[position]
            lower = buckets[position - 1] if position else 0.0
            within = rank - (running - count)
            return lower + (upper - lower) * (within / count)
    return buckets[-1]                         # pragma: no cover


class Counter:
    """Monotonically-increasing value (floats allowed, e.g. seconds).

    ``inc`` is guarded by a lock: the load harness drives query paths
    from many threads, and an unlocked ``+=`` is a read-modify-write
    that silently drops increments under contention.
    """

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        with self._lock:
            self.value += amount


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount


class Histogram:
    """Fixed-bucket histogram (Prometheus-style ``le`` semantics:
    a value equal to a bucket boundary lands in that bucket).

    With ``reservoir > 0`` the histogram additionally keeps a bounded
    sample of raw observations: **every** value while ``count`` fits
    the capacity (percentiles are then exact), degrading to a seeded
    uniform sample (Algorithm R) beyond it.  :meth:`quantile` prefers
    the reservoir and falls back to :func:`bucket_quantile` — merges
    that carry :meth:`reservoir_values` across a process boundary
    (the load harness does) keep that precision; merges of bucket
    counts alone fall back to the interpolation.

    ``observe`` is locked: bucket increments and reservoir slots are
    read-modify-write and the serving load harness observes from many
    threads at once.
    """

    __slots__ = ("buckets", "bucket_counts", "sum", "count",
                 "reservoir_capacity", "_reservoir", "_rng", "_lock")

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
                 reservoir: int = 0, reservoir_seed: int = 0) -> None:
        self.buckets: Tuple[float, ...] = tuple(
            sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket")
        # one overflow slot past the last bucket (the +Inf bucket)
        self.bucket_counts: List[int] = [0] * (len(self.buckets) + 1)
        self.sum = 0.0
        self.count = 0
        self.reservoir_capacity = int(reservoir)
        self._reservoir: List[float] = []
        self._rng = (random.Random(reservoir_seed)
                     if self.reservoir_capacity > 0 else None)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.bucket_counts[bisect_left(self.buckets, value)] += 1
            self.sum += value
            self.count += 1
            if self._rng is not None:
                if len(self._reservoir) < self.reservoir_capacity:
                    self._reservoir.append(value)
                else:
                    slot = self._rng.randrange(self.count)
                    if slot < self.reservoir_capacity:
                        self._reservoir[slot] = value

    def cumulative_counts(self) -> List[int]:
        """Cumulative per-bucket counts, ending with the +Inf total."""
        totals, running = [], 0
        for count in self.bucket_counts:
            running += count
            totals.append(running)
        return totals

    @property
    def exact(self) -> bool:
        """True when the reservoir still holds *every* observation —
        :meth:`quantile` is then exact, not an estimate."""
        return (self.reservoir_capacity > 0
                and self.count <= self.reservoir_capacity)

    def reservoir_values(self) -> List[float]:
        with self._lock:
            return list(self._reservoir)

    def quantile(self, q: float) -> float:
        """Best available quantile: exact/sampled reservoir when one
        is kept, otherwise the documented bucket interpolation."""
        with self._lock:
            if self._reservoir:
                return sorted_quantile(sorted(self._reservoir), q)
            return bucket_quantile(self.buckets, self.bucket_counts, q)


class _NullInstrument:
    """Shared do-nothing instrument handed out by a disabled registry."""

    __slots__ = ()
    value = 0.0
    sum = 0.0
    count = 0
    buckets: Tuple[float, ...] = ()
    reservoir_capacity = 0
    exact = False

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def reservoir_values(self) -> List[float]:
        return []

    def quantile(self, q: float) -> float:
        return 0.0


_NULL = _NullInstrument()

_LabelKey = Tuple[Tuple[str, str], ...]


class MetricsRegistry:
    """Creates-or-returns instruments by (name, labels) and exports
    them as JSON or Prometheus text.

    A disabled registry returns a shared null instrument from every
    accessor, so call sites never branch on ``enabled`` themselves
    (though hot paths may, to skip label-dict construction).
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._instruments: Dict[Tuple[str, _LabelKey], Any] = {}
        self._kinds: Dict[str, str] = {}
        self._helps: Dict[str, str] = {}
        # guards create-or-return: without it two threads can race the
        # check-then-insert and one instrument's increments vanish
        self._lock = threading.Lock()

    # ------------------------------------------------------------------

    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        return self._get("counter", Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:
        return self._get("gauge", Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "",
                  buckets: Optional[Sequence[float]] = None,
                  reservoir: int = 0,
                  **labels: Any) -> Histogram:
        """``reservoir``/``buckets`` only apply when this call is the
        one that creates the instrument — later accessors get the
        existing series back unchanged, so pre-register a histogram
        with a reservoir *before* the code that observes into it runs
        (the load harness does exactly this for
        ``query_latency_seconds``)."""
        if not self.enabled:
            return _NULL  # type: ignore[return-value]
        instrument = self._get(
            "histogram", lambda: Histogram(buckets or
                                           DEFAULT_LATENCY_BUCKETS,
                                           reservoir=reservoir),
            name, help, labels)
        return instrument

    def _get(self, kind: str, factory, name: str, help: str,
             labels: Dict[str, Any]):
        if not self.enabled:
            return _NULL
        with self._lock:
            known = self._kinds.get(name)
            if known is not None and known != kind:
                raise ValueError(f"metric {name!r} already registered "
                                 f"as a {known}, not a {kind}")
            key = (name,
                   tuple(sorted((k, str(v)) for k, v in labels.items())))
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = factory()
                self._instruments[key] = instrument
                self._kinds[name] = kind
                if help:
                    self._helps[name] = help
            elif help and name not in self._helps:
                self._helps[name] = help
            return instrument

    # ------------------------------------------------------------------
    # exporters
    # ------------------------------------------------------------------

    def _series(self) -> Iterator[Tuple[str, _LabelKey, Any]]:
        for (name, labels), instrument in sorted(
                self._instruments.items()):
            yield name, labels, instrument

    def to_json(self) -> dict:
        data: dict = {"schema": METRICS_SCHEMA, "counters": {},
                      "gauges": {}, "histograms": {}}
        for name, labels, instrument in self._series():
            kind = self._kinds[name]
            entry: dict = {"labels": dict(labels)}
            if kind == "histogram":
                entry.update(buckets=list(instrument.buckets),
                             counts=list(instrument.bucket_counts),
                             sum=round(instrument.sum, 6),
                             count=instrument.count)
                if instrument.reservoir_capacity and instrument.count:
                    entry["quantiles"] = {
                        "p50": round(instrument.quantile(0.50), 6),
                        "p95": round(instrument.quantile(0.95), 6),
                        "p99": round(instrument.quantile(0.99), 6),
                        "exact": instrument.exact,
                    }
            else:
                entry["value"] = round(instrument.value, 6)
            data[kind + "s"].setdefault(name, []).append(entry)
        return data

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (deterministic order)."""
        lines: List[str] = []
        emitted_header: set = set()

        def header(name: str, kind: str) -> None:
            if name in emitted_header:
                return
            emitted_header.add(name)
            help_text = self._helps.get(name, "")
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")

        def labelled(name: str, labels: _LabelKey,
                     extra: Tuple[Tuple[str, str], ...] = ()) -> str:
            pairs = [*labels, *extra]
            if not pairs:
                return name
            rendered = ",".join(f'{k}="{v}"' for k, v in pairs)
            return f"{name}{{{rendered}}}"

        def fmt(value: float) -> str:
            return repr(round(value, 9)) if isinstance(value, float) \
                else str(value)

        for name, labels, instrument in self._series():
            kind = self._kinds[name]
            header(name, kind)
            if kind == "histogram":
                cumulative = instrument.cumulative_counts()
                for bound, count in zip(instrument.buckets, cumulative):
                    lines.append(
                        f"{labelled(name + '_bucket', labels, (('le', repr(bound)),))}"
                        f" {count}")
                lines.append(
                    f"{labelled(name + '_bucket', labels, (('le', '+Inf'),))}"
                    f" {cumulative[-1]}")
                lines.append(f"{labelled(name + '_sum', labels)} "
                             f"{fmt(instrument.sum)}")
                lines.append(f"{labelled(name + '_count', labels)} "
                             f"{instrument.count}")
            else:
                lines.append(f"{labelled(name, labels)} "
                             f"{fmt(instrument.value)}")
        return "\n".join(lines) + "\n" if lines else ""


def fold_cache_info(metrics: MetricsRegistry, name: str, info) -> None:
    """Fold one cache's hit/miss tallies into the registry as gauges.

    Accepts a :class:`~repro.core.profiling.CacheCounter`, anything
    with ``hits``/``misses`` attributes (``functools.lru_cache``
    info), or a plain mapping — the same sources
    :meth:`StageProfiler.add_cache` accepts.
    """
    if not metrics.enabled:
        return
    if hasattr(info, "hits") and hasattr(info, "misses"):
        hits, misses = int(info.hits), int(info.misses)
    else:
        hits = int(info.get("hits", 0))
        misses = int(info.get("misses", 0))
    total = hits + misses
    metrics.gauge("cache_hits", "cache hits per memoization layer",
                  cache=name).set(hits)
    metrics.gauge("cache_misses", "cache misses per memoization layer",
                  cache=name).set(misses)
    metrics.gauge("cache_hit_rate", "hit fraction per memoization layer",
                  cache=name).set(round(hits / total, 4) if total else 0.0)


def render_metrics(data: dict) -> str:
    """Human-readable table of an exported metrics JSON document
    (the ``repro stats --metrics-file`` view)."""
    if data.get("schema") != METRICS_SCHEMA:
        raise ValueError(f"not a {METRICS_SCHEMA} document")
    lines: List[str] = []

    def label_text(labels: dict) -> str:
        if not labels:
            return ""
        return "{" + ",".join(f"{k}={v}" for k, v
                              in sorted(labels.items())) + "}"

    for kind in ("counters", "gauges"):
        series = data.get(kind, {})
        if not series:
            continue
        lines.append(kind)
        for name in sorted(series):
            for entry in series[name]:
                lines.append(f"  {name + label_text(entry['labels']):52} "
                             f"{entry['value']:>14}")
    for name in sorted(data.get("histograms", {})):
        for entry in data["histograms"][name]:
            lines.append(f"histogram {name}{label_text(entry['labels'])} "
                         f"count={entry['count']} sum={entry['sum']}")
            running = 0
            for bound, count in zip(entry["buckets"], entry["counts"]):
                running += count
                if count:
                    lines.append(f"  le={bound:<10} {running:>8}")
    return "\n".join(lines) if lines else "no metrics recorded"


# ----------------------------------------------------------------------
# the process-wide switchboard
# ----------------------------------------------------------------------


class Observability:
    """One tracer + one metrics registry, enabled independently."""

    def __init__(self, tracing: bool = False, metrics: bool = False,
                 trace_name: str = "repro") -> None:
        self.tracer = Tracer(enabled=tracing, name=trace_name)
        self.metrics = MetricsRegistry(enabled=metrics)

    @property
    def enabled(self) -> bool:
        return self.tracer.enabled or self.metrics.enabled


#: the default bundle: everything disabled, everything no-op.
_ACTIVE = Observability()


def get_observability() -> Observability:
    """The currently-installed bundle (disabled by default)."""
    return _ACTIVE


def install_observability(observability: Observability) -> Observability:
    """Install a bundle process-wide; returns the previous one so
    callers can restore it (see :func:`observed`)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = observability
    return previous


@contextmanager
def observed(tracing: bool = True, metrics: bool = True,
             trace_name: str = "repro") -> Iterator[Observability]:
    """Temporarily install an enabled bundle (test/CLI helper)."""
    bundle = Observability(tracing=tracing, metrics=metrics,
                           trace_name=trace_name)
    previous = install_observability(bundle)
    try:
        yield bundle
    finally:
        install_observability(previous)
