"""Parallel batch ingestion (paper §3.5's per-match independence).

Every pipeline stage from IE to document building is a pure function
of one :class:`~repro.soccer.crawler.CrawledMatch` against the shared
TBox, so batch ingestion fans out naturally:

* :class:`MatchProcessor` runs steps 2–8 for **one** match and
  returns a :class:`MatchPartial` — per-match mini-indexes for every
  index variant, the inferred individuals, and per-stage timings.
* :class:`ParallelPipelineExecutor` maps tasks over a
  ``concurrent.futures`` process pool (``workers > 1``) or runs them
  serially in-process (``workers = 1``) — both paths execute the
  exact same per-match code, so their outputs are identical.
* The pipeline then merges partials **in match order** via
  :meth:`InvertedIndex.merge`, which reproduces the doc ids, postings
  and stored fields the old sequential loop produced bit-for-bit.

Work units and partials cross process boundaries by pickling; models
travel as individual lists (the TBox is rebuilt once per worker) so a
match's payload stays proportional to the match, not the ontology.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.indexer import SemanticIndexer
from repro.core.names import IndexName
from repro.core.observability import Span, Tracer
from repro.core.resilience import (ExecutionOutcome, QuarantineRecord,
                                   ResilienceConfig, StageRunner,
                                   validate_partial)
from repro.errors import (MatchProcessingError, ResilienceError,
                          WorkerCrashError)
from repro.extraction import InformationExtractor
from repro.ontology import Ontology, soccer_ontology
from repro.ontology.model import Individual
from repro.population import OntologyPopulator
from repro.reasoning import Reasoner
from repro.reasoning.reasoner import ReasonStats
from repro.reasoning.rules import soccer_rules
from repro.search.index import InvertedIndex
from repro.search.index.segment import write_segment
from repro.search.index.segments import SEGMENT_DIR_SUFFIX, SegmentInfo
from repro.soccer.crawler import CrawledMatch

__all__ = ["MatchTask", "MatchPartial", "MatchProcessor",
           "SegmentChunkTask", "SegmentChunkResult",
           "ParallelPipelineExecutor"]


@dataclass(frozen=True)
class MatchTask:
    """One picklable unit of per-match ingestion work."""

    position: int
    crawled: CrawledMatch
    check_consistency: bool = False
    #: also return the basic/full (pre-inference) individuals, needed
    #: only when the caller persists per-stage models to a ModelStore.
    keep_intermediate: bool = False
    #: resubmission count after worker crashes / pool-level timeouts;
    #: feeds the fault plan's attempt arithmetic.
    attempt: int = 0
    #: retry/timeout/fault-injection policy; None runs the stages
    #: bare, exactly as before the resilience layer existed.
    resilience: Optional[ResilienceConfig] = None
    #: build a per-stage span tree for this match and ship it back in
    #: the partial (set when the pipeline's tracer is enabled).
    trace: bool = False
    #: run the reasoner's naive fixpoint strategies instead of the
    #: semi-naive/worklist defaults (parity oracle / benchmarking).
    naive_inference: bool = False


@dataclass
class MatchPartial:
    """Everything one match contributes to the global result."""

    position: int
    match_id: str
    #: index name -> single-match mini index, merged in match order.
    indexes: Dict[str, InvertedIndex]
    inferred_individuals: List[Individual]
    inference_seconds: float
    violations: int
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    basic_individuals: Optional[List[Individual]] = None
    full_individuals: Optional[List[Individual]] = None
    #: stage retries consumed / faults injected while producing this
    #: partial (always 0 without a resilience config).
    retries: int = 0
    faults_injected: int = 0
    #: the match's span tree (root span ``match`` with one child per
    #: stage), built when the task asked for tracing; picklable, so
    #: pool workers ship it back and the pipeline stitches it under
    #: its ``ingest`` span.
    spans: Optional[Span] = None
    #: reasoning telemetry (delta sizes, firings, sub-stage seconds);
    #: picklable like the rest of the partial so the pipeline can fold
    #: reasoning metrics at any worker count.
    reason: Optional[ReasonStats] = None


class MatchProcessor:
    """Steps 2–8 for a single match, reusable across matches.

    A worker process builds one of these (ontology, populator,
    reasoner, indexer) on first use and amortizes it over every match
    it is handed; the serial path reuses the pipeline's own
    components so behaviour is unchanged for ``workers=1``.
    """

    def __init__(self, ontology: Optional[Ontology] = None,
                 populator: Optional[OntologyPopulator] = None,
                 reasoner: Optional[Reasoner] = None,
                 indexer: Optional[SemanticIndexer] = None) -> None:
        self.ontology = ontology or soccer_ontology()
        self.populator = populator or OntologyPopulator(self.ontology)
        self.reasoner = reasoner or Reasoner(self.ontology, soccer_rules())
        self.indexer = indexer or SemanticIndexer(self.ontology,
                                                  self.reasoner.taxonomy)

    def process(self, task: MatchTask) -> MatchPartial:
        crawled = task.crawled
        times: Dict[str, float] = {}
        # the match-local tracer keeps worker and serial execution on
        # one code path: both build the subtree here and the pipeline
        # adopts it, so trace trees are identical at any worker count.
        tracer = Tracer(enabled=task.trace, name="match")
        if tracer.enabled:
            tracer.root.attributes.update(match_id=crawled.match_id,
                                          position=task.position)
        runner: Optional[StageRunner] = None
        if task.resilience is not None:
            runner = StageRunner(task.resilience, crawled.match_id,
                                 base_attempt=task.attempt,
                                 allow_crash=_IN_POOL_WORKER,
                                 tracer=tracer if tracer.enabled
                                 else None)

        def timed(stage: str, func):
            with tracer.span(stage) as span:
                started = time.perf_counter()
                if runner is not None:
                    result = runner.run(stage, func)
                else:
                    result = func()
                elapsed = time.perf_counter() - started
            # with tracing on, the profiler's per-stage numbers ARE
            # the span durations — one clock, two views.
            times[stage] = span.duration if span is not None else elapsed
            return result

        if runner is not None:
            timed("crawl", crawled.validate)

        trad = timed("trad_index", lambda: self.indexer
                     .build_traditional([crawled]))
        basic = timed("populate_basic", lambda: self.populator
                      .populate_basic(crawled))
        basic_ext = timed("basic_ext_index", lambda: self.indexer
                          .build_semantic([basic], IndexName.BASIC_EXT))
        extracted = timed("extraction", lambda: InformationExtractor(
            crawled).extract_all())
        full = timed("populate_full", lambda: self.populator
                     .populate_full(crawled, extracted))
        full_ext = timed("full_ext_index", lambda: self.indexer
                         .build_semantic([full], IndexName.FULL_EXT))
        # the reasoner opens its reason > rules/realize/consistency
        # spans on the match-local tracer, nesting them under the
        # inference stage span above.
        inference = timed("inference", lambda: self.reasoner.infer(
            full, check_consistency=task.check_consistency,
            tracer=tracer, naive=task.naive_inference))
        inferred = inference.abox
        full_inf = timed("full_inf_index", lambda: self.indexer
                         .build_semantic([inferred], IndexName.FULL_INF,
                                         inferred=True))
        phr_exp = timed("phr_exp_index", lambda: self.indexer
                        .build_semantic([inferred], IndexName.PHR_EXP,
                                        inferred=True, phrasal=True))

        partial = MatchPartial(
            position=task.position,
            match_id=crawled.match_id,
            indexes={
                IndexName.TRAD: trad,
                IndexName.BASIC_EXT: basic_ext,
                IndexName.FULL_EXT: full_ext,
                IndexName.FULL_INF: full_inf,
                IndexName.PHR_EXP: phr_exp,
            },
            inferred_individuals=list(inferred.individuals()),
            inference_seconds=times["inference"],
            violations=len(inference.violations),
            stage_seconds=times,
            basic_individuals=(list(basic.individuals())
                               if task.keep_intermediate else None),
            full_individuals=(list(full.individuals())
                              if task.keep_intermediate else None),
            reason=inference.stats,
        )
        if tracer.enabled:
            tracer.close()
            partial.spans = tracer.root
        if runner is not None:
            partial.retries = runner.retries
            partial.faults_injected = runner.faults_injected
            try:
                validate_partial(task, partial)
            except Exception as error:
                raise MatchProcessingError.from_exception(
                    crawled.match_id, "validate_partial",
                    task.attempt + 1, error, retries=runner.retries,
                    faults_injected=runner.faults_injected) from error
        return partial


# ----------------------------------------------------------------------
# segment chunk builds
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SegmentChunkTask:
    """A contiguous run of matches a worker turns into one sealed
    segment per index variant.

    This is the segment-native ingestion unit: instead of pickling
    per-match mini-indexes back to the parent (whose serial merge was
    the BENCH_ingest bottleneck), the worker merges its chunk locally
    and writes the result straight to disk — only file names and
    counters cross the process boundary.  The parent pre-assigns
    ``files`` so concurrent workers can never collide, and nothing
    becomes visible until the parent commits a manifest referencing
    the files.
    """

    position: int
    crawled: Tuple[CrawledMatch, ...]
    #: index name -> pre-assigned segment file name
    files: Mapping[str, str]
    #: root output directory; index ``name`` seals into
    #: ``<directory>/<name>.segd/<files[name]>``
    directory: str
    check_consistency: bool = False
    naive_inference: bool = False


@dataclass
class SegmentChunkResult:
    """What one sealed chunk reports back (no index payloads)."""

    position: int
    match_ids: List[str]
    #: index name -> the sealed (not yet committed) segment
    segments: Dict[str, SegmentInfo]
    inference_seconds: List[float]
    violations: int
    #: per-match processing (steps 2-8) wall seconds for this chunk
    build_seconds: float
    #: segment encode + fsync wall seconds for this chunk
    seal_seconds: float


def _build_segment_chunk(task: SegmentChunkTask) -> SegmentChunkResult:
    """Run steps 2–8 for every match of the chunk, merge the
    per-match mini indexes locally (in match order, preserving the
    serial pipeline's doc ids), and seal one segment per index."""
    processor = _WORKER_PROCESSOR
    if processor is None:
        processor = MatchProcessor()
    build_started = time.perf_counter()
    chunk_indexes = {name: InvertedIndex(name)
                     for name in IndexName.BUILT}
    match_ids: List[str] = []
    inference_seconds: List[float] = []
    violations = 0
    for offset, crawled in enumerate(task.crawled):
        partial = processor.process(MatchTask(
            position=task.position + offset, crawled=crawled,
            check_consistency=task.check_consistency,
            naive_inference=task.naive_inference))
        match_ids.append(partial.match_id)
        inference_seconds.append(partial.inference_seconds)
        violations += partial.violations
        for name, mini in partial.indexes.items():
            chunk_indexes[name].merge(mini)
    build_seconds = time.perf_counter() - build_started

    seal_started = time.perf_counter()
    segments: Dict[str, SegmentInfo] = {}
    root = Path(task.directory)
    for name, file_name in task.files.items():
        target = root / f"{name}{SEGMENT_DIR_SUFFIX}" / file_name
        path = write_segment(chunk_indexes[name], target)
        segments[name] = SegmentInfo(
            file=file_name,
            doc_count=chunk_indexes[name].doc_count,
            size_bytes=path.stat().st_size)
    return SegmentChunkResult(
        position=task.position,
        match_ids=match_ids,
        segments=segments,
        inference_seconds=inference_seconds,
        violations=violations,
        build_seconds=build_seconds,
        seal_seconds=time.perf_counter() - seal_started)


# ----------------------------------------------------------------------
# worker-process plumbing
# ----------------------------------------------------------------------

_WORKER_PROCESSOR: Optional[MatchProcessor] = None

#: True only inside pool worker processes; injected crash faults call
#: os._exit there but raise WorkerCrashError in-process (see
#: :mod:`repro.core.resilience`).
_IN_POOL_WORKER = False


def _init_worker(ontology: Optional[Ontology]) -> None:
    """Pool initializer: build the per-process component bundle once."""
    global _WORKER_PROCESSOR, _IN_POOL_WORKER
    _WORKER_PROCESSOR = MatchProcessor(ontology)
    _IN_POOL_WORKER = True


def _process_task(task: MatchTask) -> MatchPartial:
    processor = _WORKER_PROCESSOR
    if processor is None:  # pragma: no cover - initializer always ran
        processor = MatchProcessor()
    return processor.process(task)


class ParallelPipelineExecutor:
    """Runs :class:`MatchTask`s serially or over a process pool.

    ``workers=1`` executes in-process with no pickling — the
    bit-identical fallback; ``workers>1`` fans out over a
    ``ProcessPoolExecutor`` whose workers each rebuild the component
    bundle from the (pickled) shared TBox.  Results always come back
    ordered by task position.
    """

    def __init__(self, workers: int = 1,
                 ontology: Optional[Ontology] = None,
                 processor: Optional[MatchProcessor] = None) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.ontology = ontology
        self._processor = processor

    def run(self, tasks: Sequence[MatchTask]) -> List[MatchPartial]:
        return self.execute(tasks).partials

    def execute(self, tasks: Sequence[MatchTask],
                resilience: Optional[ResilienceConfig] = None
                ) -> ExecutionOutcome:
        """Run tasks, optionally under a resilience policy.

        Without a config this is exactly the pre-resilience behavior
        (any failure propagates, pool crashes are fatal).  With one,
        stages retry with backoff inside the workers, tasks lost to
        worker crashes are resubmitted to a fresh pool (bounded by
        ``crash_budget``), and permanently-failing matches are
        quarantined (``degrade=True``) or re-raised (fail-fast).
        """
        tasks = list(tasks)
        if resilience is not None:
            tasks = [replace(task, resilience=resilience)
                     for task in tasks]
        if self.workers == 1 or len(tasks) <= 1:
            outcome = self._execute_serial(tasks, resilience)
        elif resilience is None:
            outcome = self._execute_pool_fast(tasks)
        else:
            outcome = self._execute_pool_resilient(tasks, resilience)
        outcome.partials.sort(key=lambda partial: partial.position)
        return outcome

    def build_segments(self, tasks: Sequence[SegmentChunkTask]
                       ) -> List[SegmentChunkResult]:
        """Seal one segment set per chunk, serially or over the pool.

        Workers write segment files directly (nothing index-sized is
        pickled back); results come back in chunk (doc-id) order.
        The caller commits the returned :class:`SegmentInfo`s into the
        target directories' manifests — until then the files are
        invisible orphans, so a crash here cannot corrupt anything.
        """
        tasks = list(tasks)
        if self.workers == 1 or len(tasks) <= 1:
            processor = self._processor
            if processor is None:
                processor = MatchProcessor(self.ontology)
                self._processor = processor
            global _WORKER_PROCESSOR
            previous = _WORKER_PROCESSOR
            _WORKER_PROCESSOR = processor
            try:
                results = [_build_segment_chunk(task) for task in tasks]
            finally:
                _WORKER_PROCESSOR = previous
        else:
            with ProcessPoolExecutor(
                    max_workers=min(self.workers, len(tasks)),
                    initializer=_init_worker,
                    initargs=(self.ontology,)) as pool:
                results = list(pool.map(_build_segment_chunk, tasks))
        results.sort(key=lambda result: result.position)
        return results

    # ------------------------------------------------------------------
    # execution strategies
    # ------------------------------------------------------------------

    def _execute_serial(self, tasks: List[MatchTask],
                        config: Optional[ResilienceConfig]
                        ) -> ExecutionOutcome:
        processor = self._processor
        if processor is None:
            processor = MatchProcessor(self.ontology)
            self._processor = processor
        outcome = ExecutionOutcome(partials=[])
        for task in tasks:
            try:
                partial = processor.process(task)
            except MatchProcessingError as error:
                self._quarantine(outcome, config, task, error)
                continue
            self._accept(outcome, partial)
        return outcome

    def _execute_pool_fast(self, tasks: List[MatchTask]
                           ) -> ExecutionOutcome:
        with ProcessPoolExecutor(
                max_workers=min(self.workers, len(tasks)),
                initializer=_init_worker,
                initargs=(self.ontology,)) as pool:
            partials = list(pool.map(_process_task, tasks))
        return ExecutionOutcome(partials=partials)

    def _execute_pool_resilient(self, tasks: List[MatchTask],
                                config: ResilienceConfig
                                ) -> ExecutionOutcome:
        """Fan out with worker-crash recovery.

        Tasks are submitted individually so each failure maps to one
        future.  A worker crash breaks the whole pool; because the
        pool cannot say *which* worker died, the executor rebuilds it
        and switches to **isolation mode** — probing the queued tasks
        one at a time — until the poison task crashes alone and can
        be charged for it.  A task whose crash budget is exhausted is
        quarantined with stage ``worker``; innocent bystanders are
        resubmitted without being charged.  A pool-level watchdog
        (``retry.task_timeout``) backstops in-worker stage timeouts:
        a future that outlives it is treated like a crash of its
        task.
        """
        outcome = ExecutionOutcome(partials=[])
        pending = deque(tasks)
        pool_size = min(self.workers, len(tasks))
        pool = self._new_pool(pool_size)
        isolate = False
        # every rebuild charges at least one crash attempt (isolation
        # probes break one at a time), so this bound is generous; it
        # exists so a bug can never loop forever.
        rebuild_budget = len(tasks) * (config.crash_budget + 2) + 4
        try:
            while pending:
                if isolate:
                    batch = [pending.popleft()]
                else:
                    batch = list(pending)
                    pending.clear()
                futures = [(pool.submit(_process_task, task), task)
                           for task in batch]
                broken = self._drain_futures(outcome, config, futures,
                                             pending, isolate)
                if broken:
                    outcome.bump("worker_crashes")
                    rebuild_budget -= 1
                    if rebuild_budget < 0:  # pragma: no cover - safety
                        raise ResilienceError(
                            "pool rebuild budget exhausted; aborting "
                            "to avoid an infinite crash loop")
                    self._kill_pool(pool)
                    outcome.bump("pool_rebuilds")
                    pool = self._new_pool(pool_size)
                    isolate = True
                else:
                    isolate = False
        finally:
            self._kill_pool(pool)
        return outcome

    def _drain_futures(self, outcome: ExecutionOutcome,
                       config: ResilienceConfig, futures, pending,
                       isolate: bool) -> bool:
        """Consume one batch's futures; True if the pool must be
        rebuilt (worker crash or watchdog timeout)."""
        task_timeout = config.retry.task_timeout
        for index, (future, task) in enumerate(futures):
            try:
                partial = future.result(timeout=task_timeout)
            except MatchProcessingError as error:
                self._quarantine(outcome, config, task, error)
            except (BrokenProcessPool, FutureTimeoutError,
                    OSError) as error:
                hung = isinstance(error, FutureTimeoutError)
                suspects: List[MatchTask] = []
                casualties: List[MatchTask] = []
                # a watchdog timeout names its task; a broken pool
                # only names one once the task crashed alone.
                if hung or isolate:
                    suspects.append(task)
                else:
                    casualties.append(task)
                self._salvage(outcome, config, futures[index + 1:],
                              casualties)
                for suspect in suspects:
                    self._charge_crash(outcome, config, suspect,
                                       pending, hung=hung)
                # requeue casualties ahead of untouched work, in order
                for casualty in reversed(casualties):
                    pending.appendleft(casualty)
                return True
            except Exception as error:  # pragma: no cover - unexpected
                self._quarantine(
                    outcome, config, task,
                    MatchProcessingError.from_exception(
                        task.crawled.match_id, "task",
                        task.attempt + 1, error))
            else:
                self._accept(outcome, partial)
        return False

    def _salvage(self, outcome: ExecutionOutcome,
                 config: ResilienceConfig, remaining,
                 casualties: List[MatchTask]) -> None:
        """After a pool break, keep every already-finished result and
        requeue the rest without charging them."""
        for future, task in remaining:
            salvaged = False
            if future.done() and not future.cancelled():
                try:
                    partial = future.result()
                except MatchProcessingError as error:
                    self._quarantine(outcome, config, task, error)
                    salvaged = True
                except Exception:
                    pass  # died with the pool; requeue below
                else:
                    self._accept(outcome, partial)
                    salvaged = True
            else:
                future.cancel()
            if not salvaged:
                casualties.append(task)

    def _charge_crash(self, outcome: ExecutionOutcome,
                      config: ResilienceConfig, task: MatchTask,
                      pending, hung: bool) -> None:
        attempts = task.attempt + 1
        if task.attempt >= config.crash_budget:
            error_type = ("StageTimeoutError" if hung
                          else "WorkerCrashError")
            detail = ("task exceeded the pool watchdog timeout"
                      if hung else "worker process died")
            error = MatchProcessingError(
                task.crawled.match_id, "worker", attempts,
                error_type, detail)
            self._quarantine(outcome, config, task, error)
            return
        pending.appendleft(replace(task, attempt=attempts))

    def _accept(self, outcome: ExecutionOutcome,
                partial: MatchPartial) -> None:
        outcome.partials.append(partial)
        if partial.retries:
            outcome.bump("stage_retries", partial.retries)
        if partial.faults_injected:
            outcome.bump("faults_injected", partial.faults_injected)

    def _quarantine(self, outcome: ExecutionOutcome,
                    config: Optional[ResilienceConfig],
                    task: MatchTask,
                    error: MatchProcessingError) -> None:
        if config is None or not config.degrade:
            raise error
        outcome.quarantine.add(QuarantineRecord(
            match_id=error.match_id, position=task.position,
            stage=error.stage, error_type=error.error_type,
            error=error.error, attempts=error.attempts))
        outcome.bump("quarantined")
        if error.retries:
            outcome.bump("stage_retries", error.retries)
        if error.faults_injected:
            outcome.bump("faults_injected", error.faults_injected)

    def _new_pool(self, pool_size: int) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=pool_size,
                                   initializer=_init_worker,
                                   initargs=(self.ontology,))

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Tear a pool down even if a worker is hung or dead.

        ``shutdown`` alone never returns workers stuck in a hung
        stage, so terminate the worker processes first (via the
        private process map — there is no public kill switch) and
        fall back to a plain shutdown if the internals ever move.
        """
        try:
            processes = list((pool._processes or {}).values())
        except Exception:  # pragma: no cover - interpreter internals
            processes = []
        for process in processes:
            try:
                process.terminate()
            except Exception:  # pragma: no cover - already dead
                pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - broken pool teardown
            pass
