"""Parallel batch ingestion (paper §3.5's per-match independence).

Every pipeline stage from IE to document building is a pure function
of one :class:`~repro.soccer.crawler.CrawledMatch` against the shared
TBox, so batch ingestion fans out naturally:

* :class:`MatchProcessor` runs steps 2–8 for **one** match and
  returns a :class:`MatchPartial` — per-match mini-indexes for every
  index variant, the inferred individuals, and per-stage timings.
* :class:`ParallelPipelineExecutor` maps tasks over a
  ``concurrent.futures`` process pool (``workers > 1``) or runs them
  serially in-process (``workers = 1``) — both paths execute the
  exact same per-match code, so their outputs are identical.
* The pipeline then merges partials **in match order** via
  :meth:`InvertedIndex.merge`, which reproduces the doc ids, postings
  and stored fields the old sequential loop produced bit-for-bit.

Work units and partials cross process boundaries by pickling; models
travel as individual lists (the TBox is rebuilt once per worker) so a
match's payload stays proportional to the match, not the ontology.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.indexer import SemanticIndexer
from repro.core.names import IndexName
from repro.extraction import InformationExtractor
from repro.ontology import Ontology, soccer_ontology
from repro.ontology.model import Individual
from repro.population import OntologyPopulator
from repro.reasoning import Reasoner
from repro.reasoning.rules import soccer_rules
from repro.search.index import InvertedIndex
from repro.soccer.crawler import CrawledMatch

__all__ = ["MatchTask", "MatchPartial", "MatchProcessor",
           "ParallelPipelineExecutor"]


@dataclass(frozen=True)
class MatchTask:
    """One picklable unit of per-match ingestion work."""

    position: int
    crawled: CrawledMatch
    check_consistency: bool = False
    #: also return the basic/full (pre-inference) individuals, needed
    #: only when the caller persists per-stage models to a ModelStore.
    keep_intermediate: bool = False


@dataclass
class MatchPartial:
    """Everything one match contributes to the global result."""

    position: int
    match_id: str
    #: index name -> single-match mini index, merged in match order.
    indexes: Dict[str, InvertedIndex]
    inferred_individuals: List[Individual]
    inference_seconds: float
    violations: int
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    basic_individuals: Optional[List[Individual]] = None
    full_individuals: Optional[List[Individual]] = None


class MatchProcessor:
    """Steps 2–8 for a single match, reusable across matches.

    A worker process builds one of these (ontology, populator,
    reasoner, indexer) on first use and amortizes it over every match
    it is handed; the serial path reuses the pipeline's own
    components so behaviour is unchanged for ``workers=1``.
    """

    def __init__(self, ontology: Optional[Ontology] = None,
                 populator: Optional[OntologyPopulator] = None,
                 reasoner: Optional[Reasoner] = None,
                 indexer: Optional[SemanticIndexer] = None) -> None:
        self.ontology = ontology or soccer_ontology()
        self.populator = populator or OntologyPopulator(self.ontology)
        self.reasoner = reasoner or Reasoner(self.ontology, soccer_rules())
        self.indexer = indexer or SemanticIndexer(self.ontology,
                                                  self.reasoner.taxonomy)

    def process(self, task: MatchTask) -> MatchPartial:
        crawled = task.crawled
        times: Dict[str, float] = {}

        def timed(stage: str, func):
            started = time.perf_counter()
            result = func()
            times[stage] = time.perf_counter() - started
            return result

        trad = timed("trad_index", lambda: self.indexer
                     .build_traditional([crawled]))
        basic = timed("populate_basic", lambda: self.populator
                      .populate_basic(crawled))
        basic_ext = timed("basic_ext_index", lambda: self.indexer
                          .build_semantic([basic], IndexName.BASIC_EXT))
        extracted = timed("extraction", lambda: InformationExtractor(
            crawled).extract_all())
        full = timed("populate_full", lambda: self.populator
                     .populate_full(crawled, extracted))
        full_ext = timed("full_ext_index", lambda: self.indexer
                         .build_semantic([full], IndexName.FULL_EXT))
        inference = timed("inference", lambda: self.reasoner.infer(
            full, check_consistency=task.check_consistency))
        inferred = inference.abox
        full_inf = timed("full_inf_index", lambda: self.indexer
                         .build_semantic([inferred], IndexName.FULL_INF,
                                         inferred=True))
        phr_exp = timed("phr_exp_index", lambda: self.indexer
                        .build_semantic([inferred], IndexName.PHR_EXP,
                                        inferred=True, phrasal=True))

        return MatchPartial(
            position=task.position,
            match_id=crawled.match_id,
            indexes={
                IndexName.TRAD: trad,
                IndexName.BASIC_EXT: basic_ext,
                IndexName.FULL_EXT: full_ext,
                IndexName.FULL_INF: full_inf,
                IndexName.PHR_EXP: phr_exp,
            },
            inferred_individuals=list(inferred.individuals()),
            inference_seconds=times["inference"],
            violations=len(inference.violations),
            stage_seconds=times,
            basic_individuals=(list(basic.individuals())
                               if task.keep_intermediate else None),
            full_individuals=(list(full.individuals())
                              if task.keep_intermediate else None),
        )


# ----------------------------------------------------------------------
# worker-process plumbing
# ----------------------------------------------------------------------

_WORKER_PROCESSOR: Optional[MatchProcessor] = None


def _init_worker(ontology: Optional[Ontology]) -> None:
    """Pool initializer: build the per-process component bundle once."""
    global _WORKER_PROCESSOR
    _WORKER_PROCESSOR = MatchProcessor(ontology)


def _process_task(task: MatchTask) -> MatchPartial:
    processor = _WORKER_PROCESSOR
    if processor is None:  # pragma: no cover - initializer always ran
        processor = MatchProcessor()
    return processor.process(task)


class ParallelPipelineExecutor:
    """Runs :class:`MatchTask`s serially or over a process pool.

    ``workers=1`` executes in-process with no pickling — the
    bit-identical fallback; ``workers>1`` fans out over a
    ``ProcessPoolExecutor`` whose workers each rebuild the component
    bundle from the (pickled) shared TBox.  Results always come back
    ordered by task position.
    """

    def __init__(self, workers: int = 1,
                 ontology: Optional[Ontology] = None,
                 processor: Optional[MatchProcessor] = None) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.ontology = ontology
        self._processor = processor

    def run(self, tasks: Sequence[MatchTask]) -> List[MatchPartial]:
        tasks = list(tasks)
        if self.workers == 1 or len(tasks) <= 1:
            processor = self._processor
            if processor is None:
                processor = MatchProcessor(self.ontology)
                self._processor = processor
            partials = [processor.process(task) for task in tasks]
        else:
            with ProcessPoolExecutor(
                    max_workers=min(self.workers, len(tasks)),
                    initializer=_init_worker,
                    initargs=(self.ontology,)) as pool:
                partials = list(pool.map(_process_task, tasks))
        return sorted(partials, key=lambda partial: partial.position)
