"""Canonical index names shared across pipeline, benchmarks, reports.

Lives in its own module so both the orchestrating pipeline and the
parallel per-match executor can import it without a cycle.
"""

from __future__ import annotations

__all__ = ["IndexName"]


class IndexName:
    """Canonical index names used across benchmarks and reports."""

    TRAD = "TRAD"
    BASIC_EXT = "BASIC_EXT"
    FULL_EXT = "FULL_EXT"
    FULL_INF = "FULL_INF"
    PHR_EXP = "PHR_EXP"
    QUERY_EXP = "QUERY_EXP"

    LADDER = (TRAD, BASIC_EXT, FULL_EXT, FULL_INF)

    #: every index the pipeline materializes (QUERY_EXP is a
    #: query-rewriting baseline over TRAD, not a separate index).
    BUILT = (TRAD, BASIC_EXT, FULL_EXT, FULL_INF, PHR_EXP)
