"""End-to-end pipeline (paper Fig. 1, §3.1 steps 1–8).

Orchestrates the full flow from crawl artifacts to searchable indexes:

1. crawl (simulated) ............... :mod:`repro.soccer`
2. TRAD index over narrations ...... step 2
3. initial OWL models .............. step 3  (:mod:`repro.population`)
4. BASIC_EXT index ................. step 4
5. IE over narrations .............. step 5  (:mod:`repro.extraction`)
6. FULL_EXT index .................. step 6
7. reasoner + rules ................ step 7  (:mod:`repro.reasoning`)
8. FULL_INF index .................. step 8

plus the §6 PHR_EXP index and the §5 QUERY_EXP baseline.  Per-match
models are independent (the paper's scalability design), so steps 2–8
run per match through :mod:`repro.core.parallel` — serially in-process
by default, or fanned out over a worker pool with ``workers=N`` — and
the per-match partial indexes are merged back in match order, which
reproduces the sequential doc ids exactly.
:attr:`PipelineResult.inference_seconds` records the per-match times
the scalability benchmark validates, and ``run(..., profile=True)``
attaches a :class:`~repro.core.profiling.PipelineProfile` with
per-stage / per-match wall-clock and cache hit rates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.expansion import ExpandedSearchEngine, QueryExpander
from repro.core.indexer import SemanticIndexer
from repro.core.names import IndexName
from repro.core.parallel import (MatchPartial, MatchProcessor, MatchTask,
                                 ParallelPipelineExecutor)
from repro.core.profiling import PipelineProfile, StageProfiler
from repro.core.resilience import (FaultPlan, QuarantineReport,
                                   ResilienceConfig, config_with_degrade)
from repro.core.storage import ModelStore
from repro.core.phrasal import PhrasalSearchEngine
from repro.core.retrieval import KeywordSearchEngine
from repro.ontology import Ontology, soccer_ontology
from repro.population import OntologyPopulator
from repro.reasoning import Reasoner
from repro.reasoning.rules import soccer_rules
from repro.search.analysis.stemmer import PorterStemmer
from repro.search.index import InvertedIndex
from repro.soccer.crawler import CrawledMatch

__all__ = ["IndexName", "PipelineResult", "SemanticRetrievalPipeline"]


@dataclass
class PipelineResult:
    """Everything the pipeline produced."""

    indexes: Dict[str, InvertedIndex]
    engines: Dict[str, KeywordSearchEngine]
    phrasal_engine: PhrasalSearchEngine
    expansion_engine: ExpandedSearchEngine
    inferred_models: List[Ontology]
    inference_seconds: List[float] = field(default_factory=list)
    violations: int = 0
    profile: Optional[PipelineProfile] = None
    #: matches skipped by a degraded run; empty on healthy corpora
    #: and whenever resilience is disabled.
    quarantine: QuarantineReport = field(default_factory=QuarantineReport)

    def engine(self, name: str):
        """The search engine for an index name.

        ``PHR_EXP`` resolves to the phrasal engine and ``QUERY_EXP``
        to the query-expansion engine; both search interfaces match
        :class:`KeywordSearchEngine`.
        """
        try:
            return self.engines[name]
        except KeyError:
            pass
        if name == IndexName.PHR_EXP:
            return self.phrasal_engine
        if name == IndexName.QUERY_EXP:
            return self.expansion_engine
        known = sorted(self.engines) + [IndexName.PHR_EXP,
                                        IndexName.QUERY_EXP]
        raise KeyError(f"no engine for index {name!r}; "
                       f"available: {', '.join(known)}")

    def index(self, name: str) -> InvertedIndex:
        return self.indexes[name]


class SemanticRetrievalPipeline:
    """Builds every index variant from crawled matches."""

    def __init__(self, ontology: Optional[Ontology] = None) -> None:
        self.ontology = ontology or soccer_ontology()
        self.populator = OntologyPopulator(self.ontology)
        self.reasoner = Reasoner(self.ontology, soccer_rules())
        self.indexer = SemanticIndexer(self.ontology,
                                       self.reasoner.taxonomy)

    def run(self, crawled_matches: Sequence[CrawledMatch],
            check_consistency: bool = False,
            store: Optional["ModelStore"] = None,
            workers: int = 1,
            profile: bool = False,
            resilience: Optional[ResilienceConfig] = None,
            degrade: Optional[bool] = None,
            fault_plan: Optional[FaultPlan] = None) -> PipelineResult:
        """Execute steps 2–8 over ``crawled_matches``.

        ``workers`` fans the per-match stages out over a process pool;
        any value produces indexes and results identical to the serial
        path.  ``profile=True`` attaches a
        :class:`~repro.core.profiling.PipelineProfile` to the result.
        When ``store`` is given, the per-match models of each stage
        are persisted as N-Triples files — the paper's initial /
        extracted / inferred "OWL files" (§3.1 steps 3, 5, 7).

        ``resilience`` (or the ``degrade`` / ``fault_plan``
        shorthands, which imply a default config) turns on the
        fault-tolerance layer: per-stage retries with backoff,
        worker-crash recovery, and — with ``degrade=True`` — poison
        matches quarantined into ``result.quarantine`` while the
        surviving corpus is indexed normally.  On a healthy corpus
        the resilient path produces bit-identical indexes.
        """
        started = time.perf_counter()
        profiler = StageProfiler(enabled=profile)
        resilience = config_with_degrade(resilience, degrade, fault_plan)
        matches = list(crawled_matches)
        tasks = [MatchTask(position=position, crawled=crawled,
                           check_consistency=check_consistency,
                           keep_intermediate=store is not None)
                 for position, crawled in enumerate(matches)]
        executor = ParallelPipelineExecutor(
            workers=workers, ontology=self.ontology,
            processor=MatchProcessor(self.ontology,
                                     populator=self.populator,
                                     reasoner=self.reasoner,
                                     indexer=self.indexer))

        ingest_started = time.perf_counter()
        outcome = executor.execute(tasks, resilience=resilience)
        partials = outcome.partials
        quarantine = outcome.quarantine
        profiler.record("per_match_total",
                        time.perf_counter() - ingest_started)
        for partial in partials:
            profiler.record_match(partial.match_id, partial.stage_seconds)
        if resilience is not None:
            for name in ("stage_retries", "faults_injected",
                         "quarantined", "worker_crashes",
                         "pool_rebuilds"):
                profiler.add_counter(name, outcome.counters.get(name, 0))

        with profiler.stage("merge_indexes"):
            indexes = {name: InvertedIndex(name)
                       for name in IndexName.BUILT}
            for partial in partials:
                for name, mini in partial.indexes.items():
                    indexes[name].merge(mini)

        inferred_models = [
            self._rebuild_model(f"{partial.match_id}-full-inferred",
                                partial.inferred_individuals)
            for partial in partials]
        if store is not None:
            with profiler.stage("persist_models"):
                for partial, inferred in zip(partials, inferred_models):
                    store.save("initial", partial.match_id,
                               self._rebuild_model(
                                   f"{partial.match_id}-basic",
                                   partial.basic_individuals or []))
                    store.save("extracted", partial.match_id,
                               self._rebuild_model(
                                   f"{partial.match_id}-full",
                                   partial.full_individuals or []))
                    store.save("inferred", partial.match_id, inferred)

        engines = {name: KeywordSearchEngine(indexes[name])
                   for name in IndexName.LADDER}
        if profile:
            self._collect_cache_stats(profiler)
        return PipelineResult(
            indexes=indexes,
            engines=engines,
            phrasal_engine=PhrasalSearchEngine(
                indexes[IndexName.PHR_EXP]),
            expansion_engine=ExpandedSearchEngine(
                indexes[IndexName.TRAD],
                QueryExpander(self.ontology,
                              taxonomy=self.reasoner.taxonomy)),
            inferred_models=inferred_models,
            inference_seconds=[partial.inference_seconds
                               for partial in partials],
            violations=sum(partial.violations for partial in partials),
            profile=(profiler.snapshot(
                workers=workers,
                total_seconds=time.perf_counter() - started)
                if profile else None),
            quarantine=quarantine,
        )

    def _rebuild_model(self, name: str,
                       individuals: Sequence) -> Ontology:
        """An ABox over this pipeline's TBox from a list of
        individuals (as returned inside a :class:`MatchPartial`)."""
        abox = self.ontology.spawn_abox(name)
        for individual in individuals:
            abox.add_individual(individual)
        return abox

    def _collect_cache_stats(self, profiler: StageProfiler) -> None:
        """Register the analysis-path cache counters.

        With ``workers>1`` the hot caches live in the worker
        processes; the parent-side numbers reported here then only
        cover parent-side work (e.g. nothing, or earlier serial runs).
        """
        for name, counter in self.indexer.cache_stats().items():
            profiler.add_cache(f"indexer.{name}", counter)
        profiler.add_cache("analyzer.token_stream",
                           self.indexer.analyzer.cache_info())
        profiler.add_cache("stemmer.porter", PorterStemmer.cache_info())
