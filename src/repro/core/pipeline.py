"""End-to-end pipeline (paper Fig. 1, §3.1 steps 1–8).

Orchestrates the full flow from crawl artifacts to searchable indexes:

1. crawl (simulated) ............... :mod:`repro.soccer`
2. TRAD index over narrations ...... step 2
3. initial OWL models .............. step 3  (:mod:`repro.population`)
4. BASIC_EXT index ................. step 4
5. IE over narrations .............. step 5  (:mod:`repro.extraction`)
6. FULL_EXT index .................. step 6
7. reasoner + rules ................ step 7  (:mod:`repro.reasoning`)
8. FULL_INF index .................. step 8

plus the §6 PHR_EXP index and the §5 QUERY_EXP baseline.  Per-match
models are inferred independently (the paper's scalability design);
:attr:`PipelineResult.inference_seconds` records the per-match times
the scalability benchmark validates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.expansion import ExpandedSearchEngine, QueryExpander
from repro.core.indexer import SemanticIndexer
from repro.core.storage import ModelStore
from repro.core.phrasal import PhrasalSearchEngine
from repro.core.retrieval import KeywordSearchEngine
from repro.extraction import InformationExtractor
from repro.ontology import Ontology, soccer_ontology
from repro.population import OntologyPopulator
from repro.reasoning import Reasoner
from repro.reasoning.rules import soccer_rules
from repro.search.index import InvertedIndex
from repro.soccer.crawler import CrawledMatch

__all__ = ["IndexName", "PipelineResult", "SemanticRetrievalPipeline"]


class IndexName:
    """Canonical index names used across benchmarks and reports."""

    TRAD = "TRAD"
    BASIC_EXT = "BASIC_EXT"
    FULL_EXT = "FULL_EXT"
    FULL_INF = "FULL_INF"
    PHR_EXP = "PHR_EXP"
    QUERY_EXP = "QUERY_EXP"

    LADDER = (TRAD, BASIC_EXT, FULL_EXT, FULL_INF)


@dataclass
class PipelineResult:
    """Everything the pipeline produced."""

    indexes: Dict[str, InvertedIndex]
    engines: Dict[str, KeywordSearchEngine]
    phrasal_engine: PhrasalSearchEngine
    expansion_engine: ExpandedSearchEngine
    inferred_models: List[Ontology]
    inference_seconds: List[float] = field(default_factory=list)
    violations: int = 0

    def engine(self, name: str) -> KeywordSearchEngine:
        return self.engines[name]

    def index(self, name: str) -> InvertedIndex:
        return self.indexes[name]


class SemanticRetrievalPipeline:
    """Builds every index variant from crawled matches."""

    def __init__(self, ontology: Optional[Ontology] = None) -> None:
        self.ontology = ontology or soccer_ontology()
        self.populator = OntologyPopulator(self.ontology)
        self.reasoner = Reasoner(self.ontology, soccer_rules())
        self.indexer = SemanticIndexer(self.ontology,
                                       self.reasoner.taxonomy)

    def run(self, crawled_matches: Sequence[CrawledMatch],
            check_consistency: bool = False,
            store: Optional["ModelStore"] = None) -> PipelineResult:
        """Execute steps 2–8 over ``crawled_matches``.

        When ``store`` is given, the per-match models of each stage
        are persisted as N-Triples files — the paper's initial /
        extracted / inferred "OWL files" (§3.1 steps 3, 5, 7).
        """
        trad = self.indexer.build_traditional(crawled_matches)

        basic_models = [self.populator.populate_basic(crawled)
                        for crawled in crawled_matches]
        if store is not None:
            for crawled, model in zip(crawled_matches, basic_models):
                store.save("initial", crawled.match_id, model)
        basic_ext = self.indexer.build_semantic(
            basic_models, IndexName.BASIC_EXT)

        full_models = []
        for crawled in crawled_matches:
            extractor = InformationExtractor(crawled)
            full_models.append(self.populator.populate_full(
                crawled, extractor.extract_all()))
        if store is not None:
            for crawled, model in zip(crawled_matches, full_models):
                store.save("extracted", crawled.match_id, model)
        full_ext = self.indexer.build_semantic(
            full_models, IndexName.FULL_EXT)

        inferred_models: List[Ontology] = []
        inference_seconds: List[float] = []
        violation_count = 0
        for model in full_models:
            started = time.perf_counter()
            result = self.reasoner.infer(
                model, check_consistency=check_consistency)
            inference_seconds.append(time.perf_counter() - started)
            inferred_models.append(result.abox)
            violation_count += len(result.violations)
        if store is not None:
            for crawled, model in zip(crawled_matches, inferred_models):
                store.save("inferred", crawled.match_id, model)
        full_inf = self.indexer.build_semantic(
            inferred_models, IndexName.FULL_INF, inferred=True)
        phr_exp = self.indexer.build_semantic(
            inferred_models, IndexName.PHR_EXP, inferred=True,
            phrasal=True)

        indexes = {
            IndexName.TRAD: trad,
            IndexName.BASIC_EXT: basic_ext,
            IndexName.FULL_EXT: full_ext,
            IndexName.FULL_INF: full_inf,
            IndexName.PHR_EXP: phr_exp,
        }
        engines = {
            IndexName.TRAD: KeywordSearchEngine(trad),
            IndexName.BASIC_EXT: KeywordSearchEngine(basic_ext),
            IndexName.FULL_EXT: KeywordSearchEngine(full_ext),
            IndexName.FULL_INF: KeywordSearchEngine(full_inf),
        }
        return PipelineResult(
            indexes=indexes,
            engines=engines,
            phrasal_engine=PhrasalSearchEngine(phr_exp),
            expansion_engine=ExpandedSearchEngine(
                trad, QueryExpander(self.ontology,
                                    taxonomy=self.reasoner.taxonomy)),
            inferred_models=inferred_models,
            inference_seconds=inference_seconds,
            violations=violation_count,
        )
