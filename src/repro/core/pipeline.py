"""End-to-end pipeline (paper Fig. 1, §3.1 steps 1–8).

Orchestrates the full flow from crawl artifacts to searchable indexes:

1. crawl (simulated) ............... :mod:`repro.soccer`
2. TRAD index over narrations ...... step 2
3. initial OWL models .............. step 3  (:mod:`repro.population`)
4. BASIC_EXT index ................. step 4
5. IE over narrations .............. step 5  (:mod:`repro.extraction`)
6. FULL_EXT index .................. step 6
7. reasoner + rules ................ step 7  (:mod:`repro.reasoning`)
8. FULL_INF index .................. step 8

plus the §6 PHR_EXP index and the §5 QUERY_EXP baseline.  Per-match
models are independent (the paper's scalability design), so steps 2–8
run per match through :mod:`repro.core.parallel` — serially in-process
by default, or fanned out over a worker pool with ``workers=N`` — and
the per-match partial indexes are merged back in match order, which
reproduces the sequential doc ids exactly.
:attr:`PipelineResult.inference_seconds` records the per-match times
the scalability benchmark validates, and ``run(..., profile=True)``
attaches a :class:`~repro.core.profiling.PipelineProfile` with
per-stage / per-match wall-clock and cache hit rates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.core.expansion import ExpandedSearchEngine, QueryExpander
from repro.core.indexer import SemanticIndexer
from repro.core.names import IndexName
from repro.core.observability import (Observability, fold_cache_info,
                                      get_observability)
from repro.core.parallel import (MatchPartial, MatchProcessor, MatchTask,
                                 ParallelPipelineExecutor,
                                 SegmentChunkTask)
from repro.core.profiling import PipelineProfile, StageProfiler
from repro.core.resilience import (FaultPlan, QuarantineReport,
                                   ResilienceConfig, config_with_degrade)
from repro.core.storage import ModelStore
from repro.core.phrasal import PhrasalSearchEngine
from repro.core.retrieval import KeywordSearchEngine
from repro.ontology import Ontology, soccer_ontology
from repro.population import OntologyPopulator
from repro.reasoning import Reasoner
from repro.reasoning.rules import soccer_rules
from repro.search.analysis.stemmer import PorterStemmer
from repro.search.index import InvertedIndex
from repro.search.index.segments import (SEGMENT_DIR_SUFFIX,
                                         IndexDirectory, SegmentedIndex)
from repro.soccer.crawler import CrawledMatch

__all__ = ["IndexName", "PipelineResult", "SegmentedPipelineResult",
           "SemanticRetrievalPipeline"]


@dataclass
class PipelineResult:
    """Everything the pipeline produced."""

    indexes: Dict[str, InvertedIndex]
    engines: Dict[str, KeywordSearchEngine]
    phrasal_engine: PhrasalSearchEngine
    expansion_engine: ExpandedSearchEngine
    inferred_models: List[Ontology]
    inference_seconds: List[float] = field(default_factory=list)
    violations: int = 0
    profile: Optional[PipelineProfile] = None
    #: matches skipped by a degraded run; empty on healthy corpora
    #: and whenever resilience is disabled.
    quarantine: QuarantineReport = field(default_factory=QuarantineReport)

    def engine(self, name: str):
        """The search engine for an index name.

        ``PHR_EXP`` resolves to the phrasal engine and ``QUERY_EXP``
        to the query-expansion engine; both search interfaces match
        :class:`KeywordSearchEngine`.
        """
        try:
            return self.engines[name]
        except KeyError:
            pass
        if name == IndexName.PHR_EXP:
            return self.phrasal_engine
        if name == IndexName.QUERY_EXP:
            return self.expansion_engine
        known = sorted(self.engines) + [IndexName.PHR_EXP,
                                        IndexName.QUERY_EXP]
        raise KeyError(f"no engine for index {name!r}; "
                       f"available: {', '.join(known)}")

    def index(self, name: str) -> InvertedIndex:
        return self.indexes[name]


@dataclass
class SegmentedPipelineResult:
    """A segment-native ingestion run: on-disk directories plus open
    readers, no in-memory master indexes.

    The engines serve straight off the mmap'd segments through
    :class:`~repro.search.index.segments.SegmentedIndex`, which is
    bit-identical to the monolithic indexes a
    :class:`PipelineResult` would hold for the same corpus.
    """

    directories: Dict[str, IndexDirectory]
    indexes: Dict[str, SegmentedIndex]
    engines: Dict[str, KeywordSearchEngine]
    phrasal_engine: PhrasalSearchEngine
    expansion_engine: ExpandedSearchEngine
    match_ids: List[str] = field(default_factory=list)
    inference_seconds: List[float] = field(default_factory=list)
    violations: int = 0
    #: per-chunk steps 2–8 wall seconds (one entry per segment chunk)
    chunk_build_seconds: List[float] = field(default_factory=list)
    #: per-chunk segment encode + fsync wall seconds
    chunk_seal_seconds: List[float] = field(default_factory=list)

    def engine(self, name: str):
        """Mirror of :meth:`PipelineResult.engine` over segments."""
        try:
            return self.engines[name]
        except KeyError:
            pass
        if name == IndexName.PHR_EXP:
            return self.phrasal_engine
        if name == IndexName.QUERY_EXP:
            return self.expansion_engine
        known = sorted(self.engines) + [IndexName.PHR_EXP,
                                        IndexName.QUERY_EXP]
        raise KeyError(f"no engine for index {name!r}; "
                       f"available: {', '.join(known)}")

    def index(self, name: str) -> SegmentedIndex:
        return self.indexes[name]

    def refresh(self) -> None:
        """Re-open every index at its newest committed manifest
        (e.g. after a merge)."""
        for index in self.indexes.values():
            index.refresh()

    def close(self) -> None:
        for index in self.indexes.values():
            index.close()

    def __enter__(self) -> "SegmentedPipelineResult":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SemanticRetrievalPipeline:
    """Builds every index variant from crawled matches."""

    def __init__(self, ontology: Optional[Ontology] = None) -> None:
        self.ontology = ontology or soccer_ontology()
        self.populator = OntologyPopulator(self.ontology)
        self.reasoner = Reasoner(self.ontology, soccer_rules())
        self.indexer = SemanticIndexer(self.ontology,
                                       self.reasoner.taxonomy)

    def run(self, crawled_matches: Sequence[CrawledMatch],
            check_consistency: bool = False,
            store: Optional["ModelStore"] = None,
            workers: int = 1,
            profile: bool = False,
            resilience: Optional[ResilienceConfig] = None,
            degrade: Optional[bool] = None,
            fault_plan: Optional[FaultPlan] = None,
            observability: Optional[Observability] = None,
            naive_inference: bool = False
            ) -> PipelineResult:
        """Execute steps 2–8 over ``crawled_matches``.

        ``workers`` fans the per-match stages out over a process pool;
        any value produces indexes and results identical to the serial
        path.  ``profile=True`` attaches a
        :class:`~repro.core.profiling.PipelineProfile` to the result.
        When ``store`` is given, the per-match models of each stage
        are persisted as N-Triples files — the paper's initial /
        extracted / inferred "OWL files" (§3.1 steps 3, 5, 7).

        ``resilience`` (or the ``degrade`` / ``fault_plan``
        shorthands, which imply a default config) turns on the
        fault-tolerance layer: per-stage retries with backoff,
        worker-crash recovery, and — with ``degrade=True`` — poison
        matches quarantined into ``result.quarantine`` while the
        surviving corpus is indexed normally.  On a healthy corpus
        the resilient path produces bit-identical indexes.

        ``observability`` overrides the process-wide bundle from
        :func:`~repro.core.observability.get_observability`: with
        tracing enabled the run builds a ``pipeline.build`` trace tree
        (per-match subtrees stitched from the workers), and with
        metrics enabled ingest counters/histograms are folded into
        the registry.  Both disabled (the default) leaves this method
        byte-identical to the uninstrumented path.

        ``naive_inference=True`` runs the reasoner's naive fixpoint
        strategies instead of the semi-naive/worklist defaults; the
        output is bit-identical (the parity suite holds both modes to
        it), only slower — kept as an oracle and for benchmarking.
        """
        started = time.perf_counter()
        obs = (observability if observability is not None
               else get_observability())
        tracer, metrics = obs.tracer, obs.metrics
        profiler = StageProfiler(enabled=profile)
        resilience = config_with_degrade(resilience, degrade, fault_plan)
        matches = list(crawled_matches)
        tasks = [MatchTask(position=position, crawled=crawled,
                           check_consistency=check_consistency,
                           keep_intermediate=store is not None,
                           trace=tracer.enabled,
                           naive_inference=naive_inference)
                 for position, crawled in enumerate(matches)]
        executor = ParallelPipelineExecutor(
            workers=workers, ontology=self.ontology,
            processor=MatchProcessor(self.ontology,
                                     populator=self.populator,
                                     reasoner=self.reasoner,
                                     indexer=self.indexer))

        with tracer.span("pipeline.build", matches=len(matches),
                         workers=workers):
            ingest_started = time.perf_counter()
            with tracer.span("ingest", workers=workers) as ingest_span:
                outcome = executor.execute(tasks, resilience=resilience)
                partials = outcome.partials
                quarantine = outcome.quarantine
                for partial in partials:
                    tracer.adopt(partial.spans, into=ingest_span)
                for record in quarantine:
                    tracer.event("quarantine", span=ingest_span,
                                 match_id=record.match_id,
                                 stage=record.stage,
                                 error_type=record.error_type,
                                 attempts=record.attempts)
            profiler.record("per_match_total",
                            time.perf_counter() - ingest_started)
            for partial in partials:
                profiler.record_match(partial.match_id,
                                      partial.stage_seconds)
                if partial.reason is not None:
                    # reasoning sub-stages live under the inference
                    # stage; recorded with a prefix so they never mix
                    # with the top-level ingest stages.
                    for stage, seconds in partial.reason.seconds.items():
                        profiler.record(f"reason.{stage}", seconds)
                    profiler.add_counter("reason_rule_firings",
                                         partial.reason.firings_total)
                    profiler.add_counter("reason_rules_skipped",
                                         partial.reason.rules_skipped)
                    profiler.add_counter("reason_delta_triples",
                                         partial.reason.delta_total)
            if resilience is not None:
                for name in ("stage_retries", "faults_injected",
                             "quarantined", "worker_crashes",
                             "pool_rebuilds"):
                    profiler.add_counter(name,
                                         outcome.counters.get(name, 0))

            with profiler.stage("merge_indexes"), \
                    tracer.span("merge_indexes"):
                indexes = {name: InvertedIndex(name)
                           for name in IndexName.BUILT}
                for partial in partials:
                    for name, mini in partial.indexes.items():
                        indexes[name].merge(mini)

            inferred_models = [
                self._rebuild_model(f"{partial.match_id}-full-inferred",
                                    partial.inferred_individuals)
                for partial in partials]
            if store is not None:
                with profiler.stage("persist_models"), \
                        tracer.span("persist_models"):
                    for partial, inferred in zip(partials,
                                                 inferred_models):
                        store.save("initial", partial.match_id,
                                   self._rebuild_model(
                                       f"{partial.match_id}-basic",
                                       partial.basic_individuals or []))
                        store.save("extracted", partial.match_id,
                                   self._rebuild_model(
                                       f"{partial.match_id}-full",
                                       partial.full_individuals or []))
                        store.save("inferred", partial.match_id,
                                   inferred)

        engines = {name: KeywordSearchEngine(indexes[name])
                   for name in IndexName.LADDER}
        if profile:
            self._collect_cache_stats(profiler)
        if metrics.enabled:
            self._fold_metrics(metrics, outcome, partials, quarantine)
        return PipelineResult(
            indexes=indexes,
            engines=engines,
            phrasal_engine=PhrasalSearchEngine(
                indexes[IndexName.PHR_EXP]),
            expansion_engine=ExpandedSearchEngine(
                indexes[IndexName.TRAD],
                QueryExpander(self.ontology,
                              taxonomy=self.reasoner.taxonomy)),
            inferred_models=inferred_models,
            inference_seconds=[partial.inference_seconds
                               for partial in partials],
            violations=sum(partial.violations for partial in partials),
            profile=(profiler.snapshot(
                workers=workers,
                total_seconds=time.perf_counter() - started)
                if profile else None),
            quarantine=quarantine,
        )

    def run_segmented(self, crawled_matches: Sequence[CrawledMatch],
                      output_dir: Union[str, Path],
                      workers: int = 1,
                      segment_size: int = 1,
                      check_consistency: bool = False,
                      naive_inference: bool = False
                      ) -> SegmentedPipelineResult:
        """Steps 2–8, sealed straight into on-disk segments.

        The corpus is split into contiguous chunks of ``segment_size``
        matches; each chunk becomes one immutable segment per index
        variant under ``<output_dir>/<name>.segd/``.  With
        ``workers > 1`` the chunks build concurrently — workers write
        their own segment files (into names the parent reserved
        up-front), so nothing index-sized crosses a process boundary;
        this is what the per-match :meth:`run` path could never do,
        because its partial indexes had to be pickled back and merged
        serially.

        Chunks are contiguous and committed in corpus order, so doc
        ids — and with them every ranking and tie-break — are
        identical to :meth:`run` over the same matches at any
        ``workers`` / ``segment_size``.  Appending to an existing
        directory commits a new manifest generation, which the query
        result cache keys on.
        """
        if segment_size < 1:
            raise ValueError(
                f"segment_size must be >= 1, got {segment_size}")
        obs = get_observability()
        matches = list(crawled_matches)
        chunks = [matches[start:start + segment_size]
                  for start in range(0, len(matches), segment_size)]
        output_dir = Path(output_dir)
        directories = {
            name: IndexDirectory(
                output_dir / f"{name}{SEGMENT_DIR_SUFFIX}", name=name)
            for name in IndexName.BUILT}

        # reserve every file name before any worker starts: chunk i
        # always seals into the i-th reserved name, so concurrent
        # workers cannot collide and results commit in corpus order.
        reserved: Dict[str, List[str]] = {}
        counters: Dict[str, int] = {}
        for name, directory in directories.items():
            reserved[name], counters[name] = directory.reserve(
                len(chunks))
        tasks = [SegmentChunkTask(
                     position=start,
                     crawled=tuple(chunk),
                     files={name: reserved[name][number]
                            for name in directories},
                     directory=str(output_dir),
                     check_consistency=check_consistency,
                     naive_inference=naive_inference)
                 for number, (start, chunk) in enumerate(
                     zip(range(0, len(matches), segment_size), chunks))]

        executor = ParallelPipelineExecutor(
            workers=workers, ontology=self.ontology,
            processor=MatchProcessor(self.ontology,
                                     populator=self.populator,
                                     reasoner=self.reasoner,
                                     indexer=self.indexer))
        with obs.tracer.span("pipeline.build_segments",
                             matches=len(matches), chunks=len(chunks),
                             workers=workers):
            results = executor.build_segments(tasks)
            for name, directory in directories.items():
                directory.add_sealed(
                    [result.segments[name] for result in results],
                    counter=counters[name])

        if obs.metrics.enabled:
            obs.metrics.counter("ingest_matches_total",
                                "matches ingested to completion"
                                ).inc(len(matches))
            obs.metrics.counter("segment_seals_total",
                                "segments sealed by ingestion"
                                ).inc(len(results) * len(directories))
            obs.metrics.counter("segment_seal_seconds_total",
                                "wall seconds spent encoding segments"
                                ).inc(sum(result.seal_seconds
                                          for result in results))

        indexes = {name: SegmentedIndex(directory)
                   for name, directory in directories.items()}
        return SegmentedPipelineResult(
            directories=directories,
            indexes=indexes,
            engines={name: KeywordSearchEngine(indexes[name])
                     for name in IndexName.LADDER},
            phrasal_engine=PhrasalSearchEngine(
                indexes[IndexName.PHR_EXP]),
            expansion_engine=ExpandedSearchEngine(
                indexes[IndexName.TRAD],
                QueryExpander(self.ontology,
                              taxonomy=self.reasoner.taxonomy)),
            match_ids=[match_id for result in results
                       for match_id in result.match_ids],
            inference_seconds=[seconds for result in results
                               for seconds in result.inference_seconds],
            violations=sum(result.violations for result in results),
            chunk_build_seconds=[result.build_seconds
                                 for result in results],
            chunk_seal_seconds=[result.seal_seconds
                                for result in results])

    def _rebuild_model(self, name: str,
                       individuals: Sequence) -> Ontology:
        """An ABox over this pipeline's TBox from a list of
        individuals (as returned inside a :class:`MatchPartial`)."""
        abox = self.ontology.spawn_abox(name)
        for individual in individuals:
            abox.add_individual(individual)
        return abox

    def _fold_metrics(self, metrics, outcome, partials,
                      quarantine: QuarantineReport) -> None:
        """Fold one run's ingest tallies into the metrics registry.

        Stage seconds come from the per-match partials, so the
        numbers are complete at any worker count (worker-process
        registries are never shipped — the partials are the wire
        format).
        """
        metrics.counter("ingest_matches_total",
                        "matches ingested to completion"
                        ).inc(len(partials))
        metrics.counter("ingest_quarantined_total",
                        "matches skipped by degraded runs"
                        ).inc(len(quarantine))
        for name, value in outcome.counters.items():
            if name == "quarantined":  # folded explicitly above
                continue
            metrics.counter(f"ingest_{name}_total").inc(value)
        match_buckets = (0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)
        for partial in partials:
            for stage, seconds in partial.stage_seconds.items():
                metrics.counter("ingest_stage_seconds_total",
                                "wall-clock per ingest stage",
                                stage=stage).inc(seconds)
            metrics.histogram("ingest_match_seconds",
                              "per-match ingestion wall-clock",
                              buckets=match_buckets
                              ).observe(sum(partial.stage_seconds
                                            .values()))
        self._fold_reason_metrics(metrics, partials)
        for name, counter in self.indexer.cache_stats().items():
            fold_cache_info(metrics, f"indexer.{name}", counter)
        fold_cache_info(metrics, "analyzer.token_stream",
                        self.indexer.analyzer.cache_info())
        fold_cache_info(metrics, "stemmer.porter",
                        PorterStemmer.cache_info())

    @staticmethod
    def _fold_reason_metrics(metrics, partials) -> None:
        """Fold per-match reasoning telemetry into the registry.

        Kept under ``reason_*`` names, NOT mixed into the
        ``ingest_stage_*`` family — dashboards built on the ingest
        stage set keep their exact label universe.
        """
        iteration_buckets = (1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0)
        firing_buckets = (1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0)
        for partial in partials:
            stats = partial.reason
            if stats is None:
                continue
            for stage, seconds in stats.seconds.items():
                metrics.counter("reason_stage_seconds_total",
                                "wall-clock per reasoning sub-stage",
                                stage=stage).inc(seconds)
            metrics.counter("reason_rule_matches_total",
                            "candidate rule bindings enumerated"
                            ).inc(stats.matches_attempted)
            metrics.counter("reason_rule_firings_total",
                            "head instantiations that added triples"
                            ).inc(stats.firings_total)
            metrics.counter("reason_triples_inferred_total",
                            "triples asserted by forward chaining"
                            ).inc(stats.triples_added)
            metrics.counter("reason_rules_skipped_total",
                            "rule evaluations skipped by the delta "
                            "applicability check"
                            ).inc(stats.rules_skipped)
            metrics.counter("reason_delta_triples_total",
                            "delta-window triples evaluated by "
                            "semi-naive passes"
                            ).inc(stats.delta_total)
            metrics.histogram("reason_iterations",
                              "fixpoint passes per match",
                              buckets=iteration_buckets
                              ).observe(stats.iterations)
            for rule, firings in stats.firings_per_rule.items():
                metrics.histogram("reason_rule_firings",
                                  "per-rule firings per match",
                                  buckets=firing_buckets,
                                  rule=rule).observe(firings)

    def _collect_cache_stats(self, profiler: StageProfiler) -> None:
        """Register the analysis-path cache counters.

        With ``workers>1`` the hot caches live in the worker
        processes; the parent-side numbers reported here then only
        cover parent-side work (e.g. nothing, or earlier serial runs).
        """
        for name, counter in self.indexer.cache_stats().items():
            profiler.add_cache(f"indexer.{name}", counter)
        profiler.add_cache("analyzer.token_stream",
                           self.indexer.analyzer.cache_info())
        profiler.add_cache("stemmer.porter", PorterStemmer.cache_info())
