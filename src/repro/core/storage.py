"""Model storage: the paper's per-match "OWL files".

The original flow materializes OWL files at three stages (initial,
extracted, inferred — §3.1 steps 3/5/7).  This module persists our
per-match models the same way, one N-Triples file per match per
stage, and loads them back into ABoxes.  Together with
:func:`repro.search.index.save_index` this makes the offline/online
split concrete: crawl + reason once, serve queries from disk forever.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Union

from repro.errors import ReproError
from repro.ontology import (Ontology, abox_to_graph,
                            individuals_from_graph)
from repro.population.mapper import iri_slug
from repro.rdf import ntriples

__all__ = ["ModelStore"]

PathLike = Union[str, Path]

_STAGES = ("initial", "extracted", "inferred")


class ModelStore:
    """Reads and writes per-match models under one root directory.

    Layout::

        <root>/<stage>/<match-slug>.nt
    """

    def __init__(self, root: PathLike, ontology: Ontology) -> None:
        self.root = Path(root)
        self.ontology = ontology

    def _path(self, stage: str, match_id: str) -> Path:
        if stage not in _STAGES:
            raise ReproError(f"unknown model stage {stage!r} "
                             f"(expected one of {_STAGES})")
        return self.root / stage / f"{iri_slug(match_id)}.nt"

    # ------------------------------------------------------------------

    def save(self, stage: str, match_id: str, model: Ontology) -> Path:
        """Serialize one match model; returns the file path."""
        path = self._path(stage, match_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        graph = abox_to_graph(model)
        with open(path, "w", encoding="utf-8") as handle:
            ntriples.serialize(graph, handle)
        return path

    def save_all(self, stage: str,
                 models: Dict[str, Ontology]) -> List[Path]:
        """Serialize many models (match id → model)."""
        return [self.save(stage, match_id, model)
                for match_id, model in models.items()]

    def load(self, stage: str, match_id: str) -> Ontology:
        """Load one match model back into an ABox."""
        path = self._path(stage, match_id)
        if not path.exists():
            raise ReproError(f"no stored model for {match_id!r} "
                             f"at stage {stage!r}")
        with open(path, encoding="utf-8") as handle:
            graph = ntriples.parse(handle)
        model = individuals_from_graph(graph, self.ontology)
        model.name = f"{match_id}-{stage}"
        return model

    def list(self, stage: str) -> List[str]:
        """Match slugs stored at a stage."""
        directory = self.root / stage
        if stage not in _STAGES:
            raise ReproError(f"unknown model stage {stage!r}")
        if not directory.exists():
            return []
        return sorted(path.stem for path in directory.glob("*.nt"))
