#!/usr/bin/env python3
"""The paper's §8 future-work features, implemented.

1. **Word sense disambiguation** — "The performance will be further
   improved by implementing a word disambiguation module for lexical
   ambiguities."  A Lesk-style disambiguator over a domain sense
   inventory decides whether "cross"/"book"/"goal" carry their soccer
   sense in a query.

2. **Feedback-driven index expansion** — "a mechanism that expands the
   index automatically according to the user feedback".  Click logs
   teach the engine that users typing "booking" mean yellow cards.

Run:  python examples/feedback_and_wsd.py
"""

from repro import SemanticRetrievalPipeline, standard_corpus
from repro.core import F, IndexName
from repro.core.feedback import FeedbackSearchEngine
from repro.evaluation import RelevanceJudge, average_precision
from repro.extraction import LeskDisambiguator


def demo_wsd() -> None:
    print("=" * 70)
    print("Word sense disambiguation (§8)")
    print("=" * 70)
    wsd = LeskDisambiguator()
    queries = [
        "cross delivered into the box",
        "the manager looked cross and angry",
        "referee will book him after that challenge",
        "reading a good book tonight",
        "the club's goal is a top four finish",
        "messi scores a goal past the keeper",
    ]
    for text in queries:
        ambiguous = [word for word in text.split()
                     if wsd.inventory.is_ambiguous(word)]
        for word in ambiguous:
            sense = wsd.disambiguate(word, text)
            domain = (f"→ ontology class "
                      f"{sense.ontology_class.local_name}"
                      if sense.is_domain_sense else "→ non-domain sense")
            print(f"  {word!r:10} in {text!r}")
            print(f"     chose {sense.sense_id!r} {domain}")
    print()


def demo_feedback() -> None:
    print("=" * 70)
    print("Feedback-driven index expansion (§8)")
    print("=" * 70)
    corpus = standard_corpus()
    result = SemanticRetrievalPipeline().run(corpus.crawled)
    index = result.index(IndexName.FULL_INF)
    judge = RelevanceJudge(corpus)
    gold = judge.for_query("Q-4")      # all punishments

    engine = FeedbackSearchEngine(index, min_support=3)

    def measure(label):
        hits = engine.search("booking")
        ap = average_precision([h.doc_key for h in hits], gold,
                               judge.resolve)
        print(f"  {label}: query 'booking' AP = {ap:.1%} "
              f"({len(hits)} hits)")
        return hits

    before_hits = measure("before feedback")

    # the user clicks three yellow-card results
    clicks = 0
    for doc_id in range(index.doc_count):
        event = index.stored_value(doc_id, F.EVENT) or ""
        if "yellow card" in event:
            engine.record_click("booking",
                                index.stored_value(doc_id, F.DOC_KEY))
            clicks += 1
            if clicks == 3:
                break
    learned = engine.refresh()
    print(f"  learned associations after {clicks} clicks: {learned}")

    measure("after feedback ")


if __name__ == "__main__":
    demo_wsd()
    demo_feedback()
