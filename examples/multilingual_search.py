#!/usr/bin/env python3
"""Multilingual index enrichment (§7).

The paper's flexibility argument: extending the knowledge base to a
second language is "as easy as adding the translated value next to its
original value for each field" in the semantic index — no ontology
duplication.  We rebuild the FULL_INF index with a Turkish synonym
layer in the analyzer chain and query it in Turkish.

Run:  python examples/multilingual_search.py
"""

from repro import standard_corpus
from repro.core import (F, IndexName, KeywordSearchEngine,
                        SemanticRetrievalPipeline)
from repro.search.analysis import (StandardAnalyzer, SynonymFilter)
from repro.search.index import PerFieldAnalyzer

#: English index term (post-analysis form) → Turkish translations.
TURKISH = {
    "goal": ["gol"],
    "foul": ["faul"],
    "corner": ["korner"],
    "offsid": ["ofsayt"],            # stemmed "offside"
    "penalti": ["penalti"],
    "save": ["kurtaris"],
    "yellow": ["sari"],
    "card": ["kart"],
    "punish": ["ceza"],              # stemmed "punishment"
}


def main() -> None:
    corpus = standard_corpus()
    pipeline = SemanticRetrievalPipeline()

    # enrich the *index-side* analyzer with translated values (§7):
    # every semantic term is indexed alongside its Turkish equivalent.
    enriched = StandardAnalyzer().extended(SynonymFilter(TURKISH))
    pipeline.indexer.analyzer = PerFieldAnalyzer(
        default=enriched,
        per_field=dict(pipeline.indexer.analyzer.per_field))

    result = pipeline.run(corpus.crawled)
    index = result.index(IndexName.FULL_INF)

    # the query side stays plain — Turkish keywords now hit directly.
    engine = KeywordSearchEngine(index)

    for query in ("gol", "sari kart", "faul", "ofsayt"):
        hits = engine.search(query, limit=3)
        print(f"Query (Turkish): {query!r} — {len(hits)} top hits")
        for hit in hits:
            print(f"  {hit.score:7.2f}  [{hit.event_type}]  "
                  f"{hit.narration or ''}")
        print()

    print("The same index still answers English queries:")
    for hit in engine.search("yellow card", limit=2):
        print(f"  {hit.score:7.2f}  [{hit.event_type}]  {hit.narration}")


if __name__ == "__main__":
    main()
