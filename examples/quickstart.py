#!/usr/bin/env python3
"""Quickstart: build the corpus, run the pipeline, search.

Builds the paper's standard 10-match corpus (simulated UEFA crawl),
runs the full semantic-indexing pipeline and answers a few keyword
queries against the final inferred index.

Run:  python examples/quickstart.py
"""

from repro import (EvaluationHarness, SemanticRetrievalPipeline,
                   render_table, standard_corpus)
from repro.core import IndexName


def main() -> None:
    print("Building the standard corpus (10 matches)…")
    corpus = standard_corpus()
    print(f"  {corpus.narration_count} narrations, "
          f"{corpus.event_count} ground-truth events\n")

    print("Sample narrations (the simulated UEFA crawl, cf. Fig. 3):")
    for narration in corpus.crawled[1].narrations[8:14]:
        print(f"  {narration.minute:>2}'  {narration.text}")
    print()

    print("Running the pipeline (crawl → IE → populate → infer → index)…")
    pipeline = SemanticRetrievalPipeline()
    result = pipeline.run(corpus.crawled)
    for name in (*IndexName.LADDER, IndexName.PHR_EXP):
        index = result.index(name)
        print(f"  {name:10} {index.doc_count:5} documents, "
              f"{index.unique_term_count():6} unique terms")
    print()

    engine = result.engine(IndexName.FULL_INF)
    for query in ("messi goal", "punishment", "save goalkeeper barcelona"):
        print(f"Query: {query!r}")
        for hit in engine.search(query, limit=3):
            narration = (hit.narration or "(rule-inferred event, "
                         "no narration)")
            print(f"  {hit.score:7.2f}  [{hit.event_type}]")
            print(f"           {narration}")
        print()

    print("Evaluating Table 4 (this takes a few seconds)…")
    harness = EvaluationHarness(corpus, result)
    print(render_table(harness.table4(), "Table 4 — reproduced"))


if __name__ == "__main__":
    main()
