#!/usr/bin/env python3
"""Formal SPARQL queries over the inferred match models (§8).

The paper positions SPARQL as "the best that can be achieved with
semantic querying" — maximal precision, minimal usability.  This
example runs formal queries against the populated + inferred models
and contrasts them with the one-line keyword equivalents.

Run:  python examples/sparql_formal_queries.py
"""

from repro import SemanticRetrievalPipeline, standard_corpus
from repro.core import IndexName
from repro.ontology import abox_to_graph
from repro.rdf import Graph, SOCCER
from repro.sparql import ask, query

FORMAL_QUERIES = [
    ("Goals scored by Messi",
     """
     PREFIX pre: <http://repro.example.org/soccer#>
     SELECT ?minute ?match WHERE {
         ?goal a pre:Goal .
         ?goal pre:scorerPlayer ?p .
         ?p pre:hasName ?name FILTER (REGEX(?name, "Messi")) .
         ?goal pre:inMinute ?minute .
         ?goal pre:inMatch ?match .
     } ORDER BY ?minute
     """,
     "messi goal"),
    ("Assists inferred by the Fig. 6 rule",
     """
     PREFIX pre: <http://repro.example.org/soccer#>
     SELECT ?passer ?receiver WHERE {
         ?a a pre:Assist .
         ?a pre:passingPlayer ?pp . ?pp pre:hasName ?passer .
         ?a pre:passReceiver ?pr . ?pr pre:hasName ?receiver .
     }
     """,
     None),
    ("Punishments in the second half",
     """
     PREFIX pre: <http://repro.example.org/soccer#>
     SELECT ?player ?minute WHERE {
         ?card a pre:Punishment .
         ?card pre:punishedPlayer ?p . ?p pre:hasName ?player .
         ?card pre:inMinute ?minute FILTER (?minute > 45) .
     } ORDER BY ?minute LIMIT 8
     """,
     "punishment"),
]


def main() -> None:
    corpus = standard_corpus()
    result = SemanticRetrievalPipeline().run(corpus.crawled)

    merged = Graph()
    merged.namespace_manager.bind("pre", SOCCER)
    for model in result.inferred_models:
        merged |= abox_to_graph(model)
    print(f"merged inferred graph: {len(merged)} triples\n")

    engine = result.engine(IndexName.FULL_INF)
    for title, sparql_text, keyword in FORMAL_QUERIES:
        print("=" * 70)
        print(title)
        print("=" * 70)
        rows = query(merged, sparql_text)
        print(f"SPARQL ({len(rows)} rows):")
        for row in list(rows)[:6]:
            print("   ", ", ".join(str(v) for v in row))
        if keyword:
            hits = engine.search(keyword, limit=3)
            print(f"keyword equivalent {keyword!r} "
                  f"({len(hits)} top hits):")
            for hit in hits:
                print(f"    {hit.score:7.2f}  [{hit.event_type}]")
        print()

    print("ASK example — did anyone get sent off?")
    sent_off = ask(merged, """
        PREFIX pre: <http://repro.example.org/soccer#>
        ASK { ?card a pre:RedCard }
    """)
    print(f"  {sent_off}")


if __name__ == "__main__":
    main()
