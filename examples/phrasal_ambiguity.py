#!/usr/bin/env python3
"""Resolving structural ambiguity with phrasal expressions (§6).

"foul Alex Ronaldo" cannot say who fouled whom; "foul by Alex to
Ronaldo" can.  This example compares the plain FULL_INF index with
the PHR_EXP index on the paper's Table 6 queries.

Run:  python examples/phrasal_ambiguity.py
"""

from repro import SemanticRetrievalPipeline, standard_corpus
from repro.core import IndexName
from repro.evaluation import RelevanceJudge, TABLE6_QUERIES


def main() -> None:
    corpus = standard_corpus()
    result = SemanticRetrievalPipeline().run(corpus.crawled)
    judge = RelevanceJudge(corpus)

    plain = result.engine(IndexName.FULL_INF)
    phrasal = result.phrasal_engine

    for query in TABLE6_QUERIES:
        gold = judge.for_query(query.query_id)
        print("=" * 70)
        print(f"{query.query_id}: {query.description!r} "
              f"({len(gold)} truly relevant)")
        print("=" * 70)

        print("\nFULL_INF (bag of words — cannot tell subject from "
              "object):")
        for hit in plain.search(query.keywords, limit=4):
            relevant = judge.resolve(hit.doc_key) in gold
            mark = "✓" if relevant else "✗"
            print(f"  {mark} {hit.score:7.2f}  {hit.narration}")

        print("\nPHR_EXP (by/to phrases select the role):")
        for hit in phrasal.search(query.keywords, limit=4):
            relevant = judge.resolve(hit.doc_key) in gold
            mark = "✓" if relevant else "✗"
            print(f"  {mark} {hit.score:7.2f}  {hit.narration}")
        print()


if __name__ == "__main__":
    main()
