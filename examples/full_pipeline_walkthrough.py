#!/usr/bin/env python3
"""Walk through every stage of the Fig. 1 pipeline on one match.

Shows what each paper section produces: the crawl artifact (§3.1), NER
tagging (§3.3.1), template extraction (§3.3.2), ontology population
(§3.4), reasoning and rules (§3.5), and the final index entry
(§3.6.1, Tables 1-2).

Run:  python examples/full_pipeline_walkthrough.py
"""

from repro.core import F, IndexName, SemanticRetrievalPipeline
from repro.extraction import InformationExtractor
from repro.ontology import soccer_ontology
from repro.population import OntologyPopulator
from repro.rdf import SOCCER
from repro.reasoning import Reasoner
from repro.reasoning.rules import soccer_rules
from repro.soccer import SimulatedCrawler, build_teams


def main() -> None:
    # ------------------------------------------------------------ §3.1
    print("=" * 70)
    print("STAGE 1 — the crawl artifact")
    print("=" * 70)
    # pick the first seed whose simulated match contains a goal, so
    # every stage below has something to show
    for seed in range(100):
        crawler = SimulatedCrawler(build_teams(), seed=seed)
        crawled = crawler.crawl_match("Chelsea", "Barcelona",
                                      "2009-05-06")
        if any("scores!" in n.text for n in crawled.narrations):
            break
    print(f"{crawled.home_team} {crawled.home_score}-"
          f"{crawled.away_score} {crawled.away_team} "
          f"at {crawled.stadium}, referee {crawled.referee}")
    print(f"goals in the facts box: {len(crawled.goals)}, "
          f"bookings: {len(crawled.bookings)}, "
          f"narrations: {len(crawled.narrations)}")

    # --------------------------------------------------------- §3.3.1
    print()
    print("=" * 70)
    print("STAGE 2 — named entity recognition")
    print("=" * 70)
    extractor = InformationExtractor(crawled)
    sample = next(n for n in crawled.narrations if "scores!" in n.text)
    tagged = extractor.ner.tag(sample.text)
    print(f"raw:    {sample.text}")
    print(f"tagged: {tagged.text}")

    # --------------------------------------------------------- §3.3.2
    print()
    print("=" * 70)
    print("STAGE 3 — two-level lexical analysis")
    print("=" * 70)
    match = extractor.analyzer.analyze(tagged)
    print(f"level-1 keywords: "
          f"{extractor.analyzer.recognize_keywords(tagged)}")
    print(f"level-2 template kind: {match.kind}, groups: {match.groups}")
    events = extractor.extract_all()
    typed = [e for e in events if not e.is_unknown]
    print(f"extracted {len(typed)} events from "
          f"{len(events)} narrations")

    # ----------------------------------------------------------- §3.4
    print()
    print("=" * 70)
    print("STAGE 4 — ontology population")
    print("=" * 70)
    ontology = soccer_ontology()
    populator = OntologyPopulator(ontology)
    model = populator.populate_full(crawled, events)
    print(f"populated model: {model.individual_count} individuals")
    goal = next(model.individuals(SOCCER.Goal))
    print("a goal individual:")
    print(f"  types: {[t.local_name for t in goal.types]}")
    for prop, values in goal.properties.items():
        rendered = [getattr(v, 'local_name', str(v)) for v in values]
        print(f"  {prop.local_name}: {rendered}")

    # ----------------------------------------------------------- §3.5
    print()
    print("=" * 70)
    print("STAGE 5 — reasoning and rules (offline, per match)")
    print("=" * 70)
    reasoner = Reasoner(ontology, soccer_rules())
    inferred = reasoner.infer(model)
    print(f"rule engine: {inferred.firing.iterations} iterations, "
          f"{inferred.firing.triples_added} new triples, "
          f"consistent={inferred.consistent}")
    assists = list(inferred.abox.individuals(SOCCER.Assist))
    print(f"assists inferred by the Fig. 6 rule: {len(assists)}")
    inferred_goal = inferred.abox.individual(goal.uri)
    beaten = inferred_goal.get(SOCCER.beatenGoalkeeper)
    print(f"goal now knows its beaten goalkeeper: "
          f"{[b.local_name for b in beaten]}")
    print(f"and its team: "
          f"{[t.local_name for t in inferred_goal.get(SOCCER.subjectTeam)]}")

    # --------------------------------------------------------- §3.6
    print()
    print("=" * 70)
    print("STAGE 6 — semantic indexing and retrieval")
    print("=" * 70)
    pipeline = SemanticRetrievalPipeline()
    result = pipeline.run([crawled])
    index = result.index(IndexName.FULL_INF)
    engine = result.engine(IndexName.FULL_INF)
    hits = engine.search("goal", limit=1)
    doc = hits[0].document
    print("top FULL_INF document for query 'goal' (cf. Tables 1-2):")
    for field_name in (F.EVENT, F.TEAM1, F.TEAM2, F.MINUTE,
                       F.SUBJECT_PLAYER, F.SUBJECT_TEAM,
                       F.SUBJECT_PLAYER_PROP, F.OBJECT_PLAYER,
                       F.FROM_RULES, F.NARRATION):
        print(f"  {field_name:18} {doc.get(field_name) or '-'}")


if __name__ == "__main__":
    main()
