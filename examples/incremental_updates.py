#!/usr/bin/env python3
"""Incremental knowledge-base updates (§3.5 scalability + §7
flexibility).

The paper's architecture makes adding a new match cheap: the match is
crawled, extracted, populated and inferred as an *independent model*
("we disjunctively add the inferred information to the knowledge
base"), then its documents are merged into the live index — no global
re-reasoning, no re-indexing of the world.

This example builds a 9-match knowledge base, persists its staged
models (the paper's OWL files) and its index, then processes match 10
incrementally and shows the index answering queries over all ten.

Run:  python examples/incremental_updates.py
"""

import tempfile
import time
from pathlib import Path

from repro.core import (IndexName, KeywordSearchEngine, ModelStore,
                        SemanticRetrievalPipeline)
from repro.extraction import InformationExtractor
from repro.ontology import soccer_ontology
from repro.search import load_index, save_index
from repro.soccer import standard_corpus


def main() -> None:
    corpus = standard_corpus()
    existing, new_match = corpus.crawled[:9], corpus.crawled[9]
    pipeline = SemanticRetrievalPipeline()

    with tempfile.TemporaryDirectory() as tmp:
        store = ModelStore(Path(tmp) / "models", soccer_ontology())

        print("Initial offline build over 9 matches…")
        started = time.perf_counter()
        result = pipeline.run(existing, store=store)
        built = time.perf_counter() - started
        index_dir = Path(tmp) / "indexes"
        save_index(result.index(IndexName.FULL_INF), index_dir)
        print(f"  built + persisted in {built:.1f}s; "
              f"{len(store.list('inferred'))} inferred models on disk")

        print(f"\nA new match arrives: {new_match.home_team} vs "
              f"{new_match.away_team}")
        started = time.perf_counter()
        # 1. extract + populate + infer ONLY the new match
        extractor = InformationExtractor(new_match)
        model = pipeline.populator.populate_full(
            new_match, extractor.extract_all())
        inferred = pipeline.reasoner.infer(model,
                                           check_consistency=False)
        store.save("inferred", new_match.match_id, inferred.abox)
        # 2. index it alone and merge into the live index
        increment = pipeline.indexer.build_semantic(
            [inferred.abox], "increment", inferred=True)
        live = load_index(index_dir, IndexName.FULL_INF)
        live.merge(increment)
        save_index(live, index_dir)
        incremental = time.perf_counter() - started
        print(f"  incremental update: {incremental * 1000:.0f} ms "
              f"(vs {built:.1f}s for the full build — "
              f"{built / incremental:.0f}x cheaper)")
        print(f"  index now holds {live.doc_count} documents")

        print("\nQueries over the updated index:")
        engine = KeywordSearchEngine(live)
        new_team = new_match.home_team.split()[0].lower()
        for query in (f"{new_team} goal", "punishment"):
            hits = engine.search(query, limit=3)
            print(f"  {query!r}:")
            for hit in hits:
                print(f"    {hit.score:8.2f}  "
                      f"{hit.narration or hit.event_type}")


if __name__ == "__main__":
    main()
