#!/usr/bin/env python3
"""The deployable application in one script.

Builds the corpus, persists the serving indexes, then runs the online
query stack on a few interesting inputs: a typo'd query (spell
correction), a role-phrased query (§6 routing), a vocabulary-gap query
before and after click feedback (§8), and highlighted snippets
throughout.

Run:  python examples/application_demo.py
"""

import tempfile
from pathlib import Path

from repro import (SemanticRetrievalPipeline, SemanticSearchApplication,
                   standard_corpus)
from repro.core import F, IndexName


def show(response) -> None:
    flags = []
    if response.corrected:
        flags.append(f"corrected from {response.original_query!r}")
    if response.phrasal:
        flags.append("phrasal routing")
    suffix = f"  ({', '.join(flags)})" if flags else ""
    print(f"\nQuery: {response.query!r}{suffix}")
    for hit, snippet in zip(response.hits[:3], response.snippets[:3]):
        print(f"  {hit.score:9.2f}  [{hit.event_type}]")
        if snippet:
            print(f"            {snippet}")


def main() -> None:
    corpus = standard_corpus()
    print("offline build…")
    result = SemanticRetrievalPipeline().run(corpus.crawled)

    with tempfile.TemporaryDirectory() as tmp:
        SemanticSearchApplication.persist(result, tmp)
        print(f"serving indexes persisted under {tmp}")
        app = SemanticSearchApplication.open(tmp)

        show(app.search("mesi gaol"))                  # two typos
        show(app.search("foul by Daniel to Florent"))  # §6 phrases
        show(app.search("save goalkeeper barcelona"))

        print("\n--- feedback loop (§8) ---")
        print("before any clicks:")
        show(app.search("booking"))
        index = app.index
        clicks = 0
        for doc_id in range(index.doc_count):
            event = index.stored_value(doc_id, F.EVENT) or ""
            if "yellow card" in event:
                app.feedback("booking",
                             index.stored_value(doc_id, F.DOC_KEY))
                clicks += 1
                if clicks == 3:
                    break
        print(f"\nlearned after {clicks} clicks: "
              f"{app.learned_expansions}")
        show(app.search("booking"))


if __name__ == "__main__":
    main()
