"""Legacy setup shim.

This repository targets offline environments where the ``wheel``
package may be absent, making PEP 660 editable installs impossible.
Keeping a ``setup.py`` lets ``pip install -e .`` fall back to the
legacy ``setup.py develop`` code path.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
